// Package broker implements the Tasklet broker: the mediator between
// resource consumers and providers. It keeps the provider registry with
// heartbeat-based failure detection, routes bytecode and results, and drives
// the pluggable placement policy. The tasklet lifecycle itself — QoC attempt
// fan-out, memoization, coalescing, re-issue of lost attempts, finalization —
// lives in internal/lifecycle; the broker is the wire/wall-clock driver of
// that shared engine (the simulator drives the same engine in virtual time).
//
// Concurrency model: one reader goroutine per connection, one writer
// goroutine per connection (fed by a bounded queue so a slow peer cannot
// stall the broker), one scheduler goroutine, and per-tasklet state split
// into P lock-striped partitions (partition.go) keyed by tasklet-ID hash.
// Reader goroutines push decoded results into per-partition ingress rings
// and the first arrival combines the backlog into one bulk engine Apply, so
// lifecycle execution, QoC fan-in, memo lookups and effect emission run on
// all cores; deadlines and retry backoffs are served by one timer wheel
// goroutine per partition instead of one runtime timer per tasklet.
// Placement stays single-writer: events set a dirty flag and wake the
// scheduler goroutine, which owns scheduler.Index exclusively and drains
// partition queues round-robin, so a burst of events costs one placement
// pass instead of one per event. Heartbeats bypass every lock (atomic
// timestamp per provider). Writer goroutines drain their queue in batches
// so one socket flush covers a burst of Assigns or ResultPushes (see
// wire.Conn for the flush policy). Options.Partitions = 1 collapses the
// striping to a single partition whose observable behavior is pinned
// event-identical to the pre-partitioned broker by the differential tests.
package broker

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Options configures a Broker. The zero value is usable: work-stealing
// policy, 5-second heartbeat timeout, silent logger.
type Options struct {
	// Policy is the placement policy; nil selects work_steal.
	Policy scheduler.Policy
	// HeartbeatTimeout is how long a provider may stay silent before it is
	// declared dead. Zero selects 5s.
	HeartbeatTimeout time.Duration
	// Logger receives operational logs; nil discards them.
	Logger *log.Logger
	// Metrics receives broker counters and histograms; nil allocates a
	// private registry (retrievable via Broker.Metrics).
	Metrics *metrics.Registry
	// MaxPendingPerConsumer bounds queued tasklets per consumer; zero
	// selects 1<<20.
	MaxPendingPerConsumer int
	// DisableProgramCache ships the full bytecode with every assignment
	// instead of once per provider. Exists for the program-cache ablation
	// benchmark; never enable it in a real deployment.
	DisableProgramCache bool

	// Partitions is the number of lock-striped lifecycle partitions the
	// broker runs (see partition.go). Zero selects GOMAXPROCS; 1 is the
	// ablation/legacy-equivalent configuration with a single stripe. Capped
	// at 64.
	Partitions int

	// MemoEntries, MemoBytes, and MemoTTL configure the broker-tier result
	// memo (content-addressed cache of QoC-finalized results, plus
	// coalescing of identical in-flight tasklets). Zero selects the memo
	// package defaults (memo.DefaultMaxEntries etc.); any negative value
	// disables memoization and coalescing entirely.
	MemoEntries int
	MemoBytes   int
	MemoTTL     time.Duration

	// MaxAttempts caps the total attempts one tasklet may consume across
	// lost-attempt re-issues; zero (or negative) means unlimited — bounded
	// only by the QoC retry budget. A tasklet whose attempt cap is exhausted
	// with nothing left in flight finalizes as StatusLost.
	MaxAttempts int
	// RetryBackoff delays the n-th re-issue of a lost tasklet by
	// RetryBackoff << min(n-1, 6); zero re-issues immediately.
	RetryBackoff time.Duration

	// NoCoalesce disables write coalescing on this broker's connections:
	// writer loops send one message per flush instead of draining their
	// queue in batches, and the wire layer flushes after every frame.
	// Exists for the coalescing ablation and differential tests; frame
	// bytes are identical either way.
	NoCoalesce bool

	// NoBatch disables the batch control-plane frames on this broker:
	// placement sends one Assign per attempt instead of grouped
	// AssignBatches, and result pushes are never folded into
	// ResultPushBatches, regardless of what peers advertise. Incoming
	// batches are still decoded (liberal ingest). Exists for the batching
	// ablation (experiment E12) and differential tests; job results are
	// identical either way.
	NoBatch bool

	// NoIndex disables the incremental scheduler index and forces the
	// legacy full-scan placement path (rebuild candidates + Policy.Pick per
	// pending tasklet). Exists for the placement ablation (experiment E10)
	// and the differential tests; provider choices are identical either
	// way. Custom policies without an index fall back to the scan
	// automatically.
	NoIndex bool

	// ShardID names this broker within a shard group; zero means unsharded
	// and peer connections are refused. Consistent-hash routing happens on
	// the client (or in ShardGroup): brokers accept whatever they are handed
	// and rebalance queued work through the exchange. See internal/shard.
	ShardID uint64
	// GossipInterval is how often shard load gossip is emitted on every peer
	// link and exchange pulls are planned. Zero selects 100ms.
	GossipInterval time.Duration
	// Exchange enables pull-based migration toward this shard when it is
	// underloaded. Even with Exchange off the broker still answers peers'
	// MigrateRequests and emits gossip, so exchange can be enabled on any
	// subset of a group.
	Exchange bool
	// ExchangePolicy tunes the pull policy; zero fields take the shard
	// package defaults.
	ExchangePolicy shard.Policy
}

// sendQueueDepth bounds per-connection outgoing messages. A peer that
// cannot drain this many messages is broken or hostile and is dropped.
const sendQueueDepth = 4096

// writerBatchMax bounds how many queued messages a writer loop folds into
// one flush.
const writerBatchMax = 128

// maxPartitions caps Options.Partitions so batch routing can track touched
// partitions in one 64-bit mask.
const maxPartitions = 64

// Broker is the central coordinator. Create with New, start with Serve.
//
// Locking: b.mu guards the listener, the provider registry structure and
// all scheduler state (index, staged batches, scratch); jobMu guards
// consumers/jobs and their accounting (the delivery path); progMu guards
// the program store; exMu guards the shard-exchange state (shard.go); pmu
// is a read gate on the providers map for partition-side cancel sends; each
// partition has its own mutex (partition.go documents the full lock order).
// No goroutine ever holds two of {b.mu, jobMu, exMu} at once.
type Broker struct {
	opts Options
	reg  *metrics.Registry
	logf func(format string, args ...any)

	mu        sync.Mutex
	ln        net.Listener
	providers map[core.ProviderID]*providerState

	// closed flips once in Close; lock-free paths (combiners, wheels) read
	// it without b.mu.
	closed atomic.Bool

	// pmu guards the providers map alongside b.mu: writers hold both, so a
	// reader may hold either. Partition effect application cancels attempts
	// under pmu.RLock, which lets provider removal barrier on pmu before
	// the send queue is closed.
	pmu sync.RWMutex

	jobMu        sync.Mutex
	consumers    map[core.ConsumerID]*consumerState
	jobs         map[core.JobID]*jobState
	nextConsumer core.ConsumerID
	nextJob      core.JobID

	progMu   sync.RWMutex
	programs map[core.ProgramID][]byte

	// parts holds the lock-striped lifecycle partitions; see partition.go.
	parts []*partition
	// memoOn gates content-key computation on submission (pure CPU saving;
	// the engines would ignore the key anyway when memoization is off).
	memoOn bool
	// pendingN tracks the total placement-queue depth across partitions.
	pendingN atomic.Int64

	// index is the incremental placement index mirroring provider
	// free/backlog state; nil when Options.NoIndex is set or the policy has
	// no indexed form, in which case the legacy scan runs. All Index
	// methods are nil-safe. The scheduler goroutine owns it exclusively
	// (everything touching it runs under b.mu); partitions publish slot
	// changes through the dirty-provider list instead.
	index *scheduler.Index

	// dirtyMu guards the dirty-provider list: providers whose slot
	// accounting moved since the last pass and need an index resync.
	dirtyMu    sync.Mutex
	dirtyProv  []*providerState
	dirtySpare []*providerState

	// exclScratch and candScratch are placement-pass scratch buffers,
	// reused across picks so a pass over a deep queue performs no
	// allocations. Only touched under b.mu by the scheduler goroutine.
	exclScratch []core.ProviderID
	candScratch []scheduler.Candidate
	// stagedScratch lists the providers holding a staged AssignBatch this
	// pass; flushAssignBatchesLocked drains it.
	stagedScratch []*providerState

	// schedDirty marks that scheduling state changed since the last
	// placement pass; schedWake pokes the scheduler goroutine. Events
	// between two passes collapse into one flag, so a burst costs one pass.
	schedDirty atomic.Bool
	schedWake  chan struct{}

	// peers maps remote shard IDs to their bound peer links; links holds
	// every live peer connection, including inbound ones not yet named by a
	// first gossip. migrated records tasklets handed to a peer under
	// Cancel-before-launch — enough to re-Submit locally if the peer rejects
	// or dies, and to route the MigrateResult back into job accounting.
	// adopted records tasklets accepted from a peer, keyed by their fresh
	// local ID, so their finals return as MigrateResult instead of a
	// consumer push. All five live under exMu; see shard.go.
	exMu     sync.Mutex
	peers    map[uint64]*peerState
	links    map[*peerState]bool
	migrated map[core.TaskletID]migratedRec
	adopted  map[core.TaskletID]adoptedRec

	gossipSeq  uint64
	lastFinal  int64
	exchRate   float64
	exchRateOK bool
	// finalizedN counts finals processed (local + adopted); feeds the
	// gossip rate. Atomic: partitions bump it, gossipTick reads it.
	finalizedN atomic.Int64

	nextProvider core.ProviderID // under b.mu
	nextTasklet  atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup

	// Hot-path metric handles, resolved once at construction so the
	// per-result path never takes the registry lock. The per-attempt and
	// per-tasklet counters are additionally lock-striped: each partition
	// increments its own cell (cached in the partition struct) and Value()
	// merges.
	mSendDropped   *metrics.Counter
	mAttemptsOK    *metrics.Counter
	mAttemptsFlt   *metrics.Counter
	mAttemptsOth   *metrics.Counter
	mAttemptsLost  *metrics.Counter
	mLaunched      *metrics.Counter
	mCompleted     *metrics.Counter
	mFailed        *metrics.Counter
	mDeadlineExp   *metrics.Counter
	mProvidersLost *metrics.Counter
	mSubmitted     *metrics.Counter
	mExecMS        *metrics.Histogram
	mLatencyMS     *metrics.Histogram
	mSchedPassNS   *metrics.Histogram
	mPendingDep    *metrics.Gauge
	mPlaced        *metrics.Counter
	mExchMigrated  *metrics.Counter
	mExchRequests  *metrics.Counter
	mExchAdopted   *metrics.Counter
	mShardQueue    *metrics.Gauge
}

type providerState struct {
	info  core.ProviderInfo
	out   chan wire.Message
	nc    net.Conn
	label string // "provider N", precomputed for hot-path logs
	caps  uint8  // protocol extensions advertised in Hello

	// free/backlog/finished are atomics: partition combiners settle them as
	// results arrive while the scheduler reads them under b.mu. assigned
	// and the reliability estimate inside info stay scheduler-only.
	free     atomic.Int64
	backlog  atomic.Int64
	finished atomic.Int64 // attempts that returned any result
	assigned int          // under b.mu

	sent map[core.ProgramID]bool // programs already shipped; under b.mu

	gone atomic.Bool
	// dirty marks membership in the broker's dirty-provider list (one
	// index resync per pass however many results arrived).
	dirty atomic.Bool

	// staged accumulates this pass's assignments into one AssignBatch frame
	// (batch-capable providers only); flushed at the end of every placement
	// pass. Only touched under b.mu by the scheduler goroutine.
	staged *wire.AssignBatch

	// lastBeat is the UnixNano timestamp of the latest heartbeat, updated
	// without the broker mutex so heartbeats never queue behind scheduling.
	lastBeat atomic.Int64

	// dropWarned limits the send-queue-overflow log to once per connection.
	dropWarned atomic.Bool
}

type consumerState struct {
	id      core.ConsumerID
	out     chan wire.Message
	nc      net.Conn
	label   string // "consumer N", precomputed for hot-path logs
	caps    uint8  // protocol extensions advertised in Hello
	jobs    map[core.JobID]bool
	pending int // queued tasklets across this consumer's jobs
	gone    bool

	dropWarned atomic.Bool
}

type jobState struct {
	id        core.JobID
	consumer  core.ConsumerID
	tasklets  []core.TaskletID
	total     int
	completed int
	failed    int
	cancelled bool
}

// New creates a broker with the given options.
func New(opts Options) *Broker {
	if opts.Policy == nil {
		opts.Policy = scheduler.NewWorkSteal()
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * time.Second
	}
	if opts.MaxPendingPerConsumer <= 0 {
		opts.MaxPendingPerConsumer = 1 << 20
	}
	if opts.GossipInterval <= 0 {
		opts.GossipInterval = 100 * time.Millisecond
	}
	if opts.Partitions == 0 {
		opts.Partitions = runtime.GOMAXPROCS(0)
	}
	if opts.Partitions < 1 {
		opts.Partitions = 1
	}
	if opts.Partitions > maxPartitions {
		opts.Partitions = maxPartitions
	}
	opts.ExchangePolicy = opts.ExchangePolicy.Normalize()
	reg := opts.Metrics
	if reg == nil {
		reg = &metrics.Registry{}
	}
	logf := func(string, ...any) {}
	if opts.Logger != nil {
		logf = opts.Logger.Printf
	}
	b := &Broker{
		opts:      opts,
		reg:       reg,
		logf:      logf,
		providers: map[core.ProviderID]*providerState{},
		consumers: map[core.ConsumerID]*consumerState{},
		jobs:      map[core.JobID]*jobState{},
		programs:  map[core.ProgramID][]byte{},
		peers:     map[uint64]*peerState{},
		links:     map[*peerState]bool{},
		migrated:  map[core.TaskletID]migratedRec{},
		adopted:   map[core.TaskletID]adoptedRec{},
		schedWake: make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	b.mSendDropped = reg.Counter("broker.send_dropped")
	b.mAttemptsOK = reg.Counter("attempts.ok")
	b.mAttemptsFlt = reg.Counter("attempts.fault")
	b.mAttemptsOth = reg.Counter("attempts.other")
	b.mAttemptsLost = reg.Counter("attempts.lost")
	b.mLaunched = reg.Counter("attempts.launched")
	b.mCompleted = reg.Counter("tasklets.completed")
	b.mFailed = reg.Counter("tasklets.failed")
	b.mDeadlineExp = reg.Counter("tasklets.deadline_expired")
	b.mProvidersLost = reg.Counter("providers.lost")
	b.mSubmitted = reg.Counter("tasklets.submitted")
	b.mExecMS = reg.Histogram("attempt.exec_ms")
	b.mLatencyMS = reg.Histogram("tasklet.latency_ms")
	b.mSchedPassNS = reg.Histogram("broker.sched_pass_ns")
	b.mPendingDep = reg.Gauge("broker.pending_depth")
	b.mPlaced = reg.Counter("broker.placed_per_pass")
	b.mExchMigrated = reg.Counter("broker.exchange.migrated")
	b.mExchRequests = reg.Counter("broker.exchange.requests")
	b.mExchAdopted = reg.Counter("broker.exchange.adopted")
	b.mShardQueue = reg.Gauge("broker.shard.queue_depth")
	if !opts.NoIndex {
		// Custom policies outside the scheduler package have no indexed
		// form; the legacy scan handles them.
		if ix, err := scheduler.NewIndexFor(opts.Policy); err == nil {
			b.index = ix
		}
	}

	var lopts lifecycle.Options
	lopts.MaxAttempts = opts.MaxAttempts
	lopts.RetryBackoff = opts.RetryBackoff
	if opts.MemoEntries >= 0 && opts.MemoBytes >= 0 && opts.MemoTTL >= 0 {
		// One cache shared by every partition engine (the cache carries its
		// own mutex), so repeats hit across partitions. Flight tables are
		// per partition: a flight's waiter fan-out dereferences the owning
		// engine's tasklet records, so coalescing is partition-local.
		lopts.Memo = memo.New(memo.Config{
			MaxEntries: opts.MemoEntries,
			MaxBytes:   opts.MemoBytes,
			TTL:        opts.MemoTTL,
			Metrics:    reg,
			Prefix:     "memo.",
		})
		b.memoOn = true
	}

	p := opts.Partitions
	b.mAttemptsOK.Shard(p)
	b.mAttemptsFlt.Shard(p)
	b.mAttemptsOth.Shard(p)
	b.mCompleted.Shard(p)
	b.mFailed.Shard(p)
	b.mDeadlineExp.Shard(p)
	b.mExecMS.Shard(p)
	b.mLatencyMS.Shard(p)
	b.parts = make([]*partition, p)
	for i := range b.parts {
		po := lopts
		po.AttemptOffset = uint64(i)
		po.AttemptStride = uint64(p)
		if b.memoOn {
			po.Flights = memo.NewFlightTable(reg, "memo.")
		}
		part := &partition{
			idx:        i,
			life:       lifecycle.New(po),
			ring:       newIngressRing(),
			cOK:        b.mAttemptsOK.Cell(i),
			cFlt:       b.mAttemptsFlt.Cell(i),
			cOth:       b.mAttemptsOth.Cell(i),
			cCompleted: b.mCompleted.Cell(i),
			cFailed:    b.mFailed.Cell(i),
			cDeadlineExp: b.mDeadlineExp.Cell(i),
			hExec:      b.mExecMS.Cell(i),
			hLatency:   b.mLatencyMS.Cell(i),
		}
		part.wheel = newTimerWheel(b.wheelFire(part))
		b.parts[i] = part
	}
	return b
}

// wheelFire builds part's timer-wheel callback: firings enter the partition
// through its ingress ring like any other event, so the combiner discipline
// covers them.
func (b *Broker) wheelFire(part *partition) func(kind uint8, tid core.TaskletID) {
	return func(kind uint8, tid core.TaskletID) {
		ev := partEvent{kind: peDeadline, tid: tid}
		if kind == wheelLaunch {
			ev.kind = peLaunchReady
		}
		part.ring.push(&ev)
		b.pump(part)
	}
}

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in background
// goroutines. It returns the bound address.
func (b *Broker) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("broker: listen %s: %w", addr, err)
	}
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		ln.Close()
		return "", errors.New("broker: already closed")
	}
	b.ln = ln
	b.mu.Unlock()

	b.wg.Add(3)
	go func() {
		defer b.wg.Done()
		b.acceptLoop(ln)
	}()
	go func() {
		defer b.wg.Done()
		b.reaperLoop()
	}()
	go func() {
		defer b.wg.Done()
		b.schedLoop()
	}()
	for _, part := range b.parts {
		w := part.wheel
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			w.run(b.stop)
		}()
	}
	if b.opts.ShardID != 0 {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.gossipLoop()
		}()
	}
	return ln.Addr().String(), nil
}

// Close stops the broker: closes the listener and all connections, and
// waits for the handler goroutines to drain.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		return nil
	}
	b.closed.Store(true)
	close(b.stop)
	ln := b.ln
	var conns []net.Conn
	for _, p := range b.providers {
		conns = append(conns, p.nc)
	}
	b.mu.Unlock()
	b.jobMu.Lock()
	for _, c := range b.consumers {
		conns = append(conns, c.nc)
	}
	b.jobMu.Unlock()
	b.exMu.Lock()
	for ps := range b.links {
		conns = append(conns, ps.nc)
	}
	b.exMu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	b.wg.Wait()
	return nil
}

func (b *Broker) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handleConn(nc)
		}()
	}
}

// reaperLoop expires providers that miss heartbeats.
func (b *Broker) reaperLoop() {
	interval := b.opts.HeartbeatTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-b.stop:
			return
		}
		b.mu.Lock()
		if b.closed.Load() {
			b.mu.Unlock()
			return
		}
		cutoff := time.Now().Add(-b.opts.HeartbeatTimeout).UnixNano()
		var dead []*providerState
		for _, p := range b.providers {
			if !p.gone.Load() && p.lastBeat.Load() < cutoff {
				dead = append(dead, p)
			}
		}
		b.mu.Unlock()
		for _, p := range dead {
			b.logf("broker: provider %d missed heartbeats, removing", p.info.ID)
			b.removeProvider(p)
			p.nc.Close()
		}
	}
}

// handleConn performs the handshake and dispatches to the role loop.
func (b *Broker) handleConn(nc net.Conn) {
	defer nc.Close()
	conn := wire.NewConn(nc)
	conn.NoCoalesce = b.opts.NoCoalesce
	conn.ReadTimeout = 30 * time.Second

	msg, err := conn.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeProtocol, Msg: "expected hello"})
		return
	}
	if hello.Version != wire.ProtocolVersion {
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeVersion,
			Msg: fmt.Sprintf("protocol version %d unsupported", hello.Version)})
		return
	}

	switch hello.Role {
	case wire.RoleProvider:
		b.serveProvider(nc, conn, hello)
	case wire.RoleConsumer:
		b.serveConsumer(nc, conn, hello)
	case wire.RolePeer:
		b.servePeer(nc, conn, hello)
	default:
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeProtocol, Msg: "unknown role"})
	}
}

// schedLoop is the single scheduler goroutine: it runs one placement pass
// per wake-up. While a pass holds b.mu and the partition locks, arriving
// events settle into partition state, set the dirty flag, and are all
// covered by the next pass — so a burst of N results costs one or two walks
// of the placement queue, not N.
func (b *Broker) schedLoop() {
	for {
		select {
		case <-b.schedWake:
		case <-b.stop:
			return
		}
		for b.schedDirty.Swap(false) {
			if b.closed.Load() {
				return
			}
			b.mu.Lock()
			b.schedulePassLocked()
			b.mu.Unlock()
		}
	}
}

// schedule records that scheduling state changed and wakes the scheduler
// goroutine. Callers need no lock; the pass itself runs on the scheduler
// goroutine so event handlers return immediately.
func (b *Broker) schedule() {
	b.schedDirty.Store(true)
	select {
	case b.schedWake <- struct{}{}:
	default: // a wake-up is already pending; it will cover this event
	}
}

// writerLoop drains a connection's outgoing queue through the shared
// wire.WriterLoop. fold, when non-nil, rewrites each drained burst before it
// is sent (batch-frame folding on capable consumer links).
func (b *Broker) writerLoop(conn *wire.Conn, out <-chan wire.Message, nc net.Conn, fold func([]wire.Message) []wire.Message) {
	wire.WriterLoop(conn, out, wire.WriterOpts{
		Max:        writerBatchMax,
		NoCoalesce: b.opts.NoCoalesce,
		Fold:       fold,
		Closer:     nc,
	})
}

// enqueue appends to a bounded send queue. A peer that cannot drain
// sendQueueDepth messages is broken or hostile: the drop is counted in
// broker.send_dropped, logged once per connection, and the connection is
// closed so the reader tears the peer down.
func (b *Broker) enqueue(out chan wire.Message, m wire.Message, nc net.Conn, warned *atomic.Bool, label string) {
	select {
	case out <- m:
	default:
		b.mSendDropped.Inc()
		if !warned.Swap(true) {
			b.logf("broker: %s send queue full; dropping %s and closing the connection", label, m.Type())
		}
		nc.Close()
	}
}

// ---------- provider side ----------

func (b *Broker) serveProvider(nc net.Conn, conn *wire.Conn, hello *wire.Hello) {
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		return
	}
	b.nextProvider++
	id := b.nextProvider
	now := time.Now()
	p := &providerState{
		info: core.ProviderInfo{
			ID:            id,
			Addr:          conn.RemoteAddr(),
			Reliability:   1,
			Joined:        now,
			LastHeartbeat: now,
		},
		out:   make(chan wire.Message, sendQueueDepth),
		nc:    nc,
		label: fmt.Sprintf("provider %d", id),
		caps:  hello.Caps,
		sent:  map[core.ProgramID]bool{},
	}
	p.lastBeat.Store(now.UnixNano())
	b.pmu.Lock()
	b.providers[id] = p
	b.pmu.Unlock()
	b.mu.Unlock()

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.writerLoop(conn, p.out, nc, nil)
	}()

	b.enqueue(p.out, &wire.Welcome{ID: uint64(id)}, nc, &p.dropWarned, p.label)
	b.reg.Counter("providers.joined").Inc()
	b.logf("broker: provider %d connected from %s (%s)", id, conn.RemoteAddr(), hello.Name)

	conn.ReadTimeout = b.opts.HeartbeatTimeout * 2
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		switch m := msg.(type) {
		case *wire.Register:
			p.lastBeat.Store(time.Now().UnixNano())
			b.mu.Lock()
			p.info.Slots = m.Slots
			p.info.Class = m.Class
			p.info.Speed = m.Speed
			p.free.Store(int64(m.Slots))
			b.index.Upsert(&p.info, m.Slots, int(p.backlog.Load()))
			b.mu.Unlock()
			b.schedule()
			b.logf("broker: provider %d registered: %d slots, %.1f Mops/s, class %s",
				id, m.Slots, m.Speed, m.Class)
		case *wire.Heartbeat:
			// Liveness only; no broker state changes, so heartbeats never
			// queue behind any lock.
			p.lastBeat.Store(time.Now().UnixNano())
		case *wire.AttemptResult:
			b.onAttemptResult(p, m)
		case *wire.AttemptResultBatch:
			b.onAttemptResultBatch(p, m)
		case *wire.Bye:
			goto done
		default:
			b.logf("broker: provider %d sent unexpected %s", id, msg.Type())
			goto done
		}
	}
done:
	b.removeProvider(p)
	// Barrier: a partition applying a CancelAttempt may hold a reference
	// from before the map delete; it enqueues under pmu.RLock, so one write
	// acquisition guarantees no send races the close below.
	b.pmu.Lock()
	b.pmu.Unlock() //lint:ignore SA2001 empty section is the barrier
	close(p.out)
	b.mProvidersLost.Inc()
	b.logf("broker: provider %d disconnected", id)
}

// removeProvider declares a provider dead: its in-flight attempts are fed
// back to every partition engine as lost. Idempotent; callers hold no
// locks.
func (b *Broker) removeProvider(p *providerState) {
	b.mu.Lock()
	if p.gone.Swap(true) {
		b.mu.Unlock()
		return
	}
	b.pmu.Lock()
	delete(b.providers, p.info.ID)
	b.pmu.Unlock()
	b.index.Remove(p.info.ID)
	b.mu.Unlock()

	lost := 0
	var out []lifecycle.Effect
	for _, part := range b.parts {
		part.mu.Lock()
		n, fx := part.life.ProviderLost(p.info.ID)
		lost += n
		out, _ = b.applyPartFxLocked(part, fx, out)
		part.mu.Unlock()
	}
	if lost > 0 {
		b.mAttemptsLost.Add(int64(lost))
	}
	b.applyOutFx(out)
	b.schedule()
}

// onAttemptResult routes a provider's result report to its partition.
func (b *Broker) onAttemptResult(p *providerState, m *wire.AttemptResult) {
	part := b.part(m.Tasklet)
	part.ring.push(&partEvent{
		kind: peResult,
		prov: p,
		res: core.Result{
			Tasklet:   m.Tasklet,
			Attempt:   m.Attempt,
			Provider:  p.info.ID,
			Status:    m.Status,
			Return:    m.Return,
			Emitted:   m.Emitted,
			FaultCode: m.FaultCode,
			FaultMsg:  m.FaultMsg,
			FuelUsed:  m.FuelUsed,
			Exec:      time.Duration(m.ExecNanos),
		},
	})
	b.pump(part)
}

// onAttemptResultBatch routes a provider's folded burst of result reports:
// each result goes to its partition's ring, then every touched partition is
// pumped once, so the whole burst becomes at most one bulk Engine.Apply per
// partition (exactly one with a single partition — the legacy path).
func (b *Broker) onAttemptResultBatch(p *providerState, m *wire.AttemptResultBatch) {
	if len(m.Results) == 0 {
		return
	}
	var touched uint64
	for i := range m.Results {
		r := &m.Results[i]
		part := b.part(r.Tasklet)
		part.ring.push(&partEvent{
			kind: peResult,
			prov: p,
			res: core.Result{
				Tasklet:   r.Tasklet,
				Attempt:   r.Attempt,
				Provider:  p.info.ID,
				Status:    r.Status,
				Return:    r.Return,
				Emitted:   r.Emitted,
				FaultCode: r.FaultCode,
				FaultMsg:  r.FaultMsg,
				FuelUsed:  r.FuelUsed,
				Exec:      time.Duration(r.ExecNanos),
			},
		})
		touched |= 1 << uint(part.idx)
	}
	for _, part := range b.parts {
		if touched&(1<<uint(part.idx)) != 0 {
			b.pump(part)
		}
	}
}

// updateReliabilityLocked refreshes the completion-ratio estimate. Callers
// hold b.mu (info.Reliability is scheduler-owned).
func (b *Broker) updateReliabilityLocked(p *providerState) {
	if p.assigned > 0 {
		p.info.Reliability = float64(p.finished.Load()) / float64(p.assigned)
		if p.info.Reliability > 1 {
			p.info.Reliability = 1
		}
	}
}

// ---------- consumer side ----------

func (b *Broker) serveConsumer(nc net.Conn, conn *wire.Conn, hello *wire.Hello) {
	if b.closed.Load() {
		return
	}
	b.jobMu.Lock()
	b.nextConsumer++
	id := b.nextConsumer
	c := &consumerState{
		id:    id,
		out:   make(chan wire.Message, sendQueueDepth),
		nc:    nc,
		label: fmt.Sprintf("consumer %d", id),
		caps:  hello.Caps,
		jobs:  map[core.JobID]bool{},
	}
	b.consumers[id] = c
	b.jobMu.Unlock()

	// Batch-capable consumers get each writer burst's run of ResultPushes
	// folded into one ResultPushBatch frame; legacy consumers keep receiving
	// byte-identical single frames.
	var fold func([]wire.Message) []wire.Message
	if c.caps&wire.CapBatch != 0 && !b.opts.NoBatch {
		fold = wire.FoldBatchFrames
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.writerLoop(conn, c.out, nc, fold)
	}()

	b.enqueue(c.out, &wire.Welcome{ID: uint64(id)}, nc, &c.dropWarned, c.label)
	b.logf("broker: consumer %d connected from %s (%s)", id, conn.RemoteAddr(), hello.Name)

	conn.ReadTimeout = 0 // consumers may idle while awaiting results
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		switch m := msg.(type) {
		case *wire.SubmitJob:
			if err := b.acceptJob(c, m); err != nil {
				b.enqueue(c.out, &wire.ErrorMsg{Code: wire.ErrCodeBadJob, Msg: err.Error()}, nc, &c.dropWarned, c.label)
			}
		case *wire.CancelJob:
			b.cancelJob(c, m.Job)
		case *wire.QueryFleet:
			b.enqueue(c.out, b.fleetInfo(), nc, &c.dropWarned, c.label)
		case *wire.Bye:
			goto done
		default:
			b.logf("broker: consumer %d sent unexpected %s", id, msg.Type())
			goto done
		}
	}
done:
	b.removeConsumer(c)
	close(c.out)
	b.logf("broker: consumer %d disconnected", id)
}

// acceptJob validates and admits a job, submitting its tasklets to the
// partition lifecycle engines.
func (b *Broker) acceptJob(c *consumerState, m *wire.SubmitJob) error {
	spec := core.JobSpec{
		Program: m.Program, Params: m.Params, QoC: m.QoC, Fuel: m.Fuel, Seed: m.Seed,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	fuel := m.Fuel
	if fuel == 0 {
		fuel = 100_000_000
	}

	progID := core.HashProgram(m.Program)
	b.progMu.Lock()
	if _, ok := b.programs[progID]; !ok {
		data := make([]byte, len(m.Program))
		copy(data, m.Program)
		b.programs[progID] = data
	}
	b.progMu.Unlock()

	n := len(m.Params)
	b.jobMu.Lock()
	if c.gone {
		b.jobMu.Unlock()
		return errors.New("broker: consumer disconnected")
	}
	if c.pending+n > b.opts.MaxPendingPerConsumer {
		b.jobMu.Unlock()
		return fmt.Errorf("broker: consumer queue limit %d exceeded", b.opts.MaxPendingPerConsumer)
	}

	b.nextJob++
	job := &jobState{id: b.nextJob, consumer: c.id, total: n}
	b.jobs[job.id] = job
	c.jobs[job.id] = true
	c.pending += n

	// Tasklet IDs are allocated as one contiguous run so P=1 keeps the
	// legacy sequence, then the whole job is grouped per partition: each
	// group is one bulk Apply under its partition's effect-scratch reset
	// (one group — the legacy single bulk Submit — when Partitions is 1).
	// JobAccepted is queued before any engine runs so the consumer has
	// registered the job before its first ResultPush (cache hits deliver
	// from the partition walk below).
	base := core.TaskletID(b.nextTasklet.Add(uint64(n)) - uint64(n))
	now := time.Now()
	groups := make([][]lifecycle.Event, len(b.parts))
	for i, params := range m.Params {
		tid := base + core.TaskletID(i) + 1
		t := core.Tasklet{
			ID: tid, Job: job.id, Index: i,
			Program: progID, Params: params,
			QoC: m.QoC, Fuel: fuel, Seed: m.Seed, Submitted: now,
		}
		job.tasklets = append(job.tasklets, t.ID)

		ev := lifecycle.Event{Kind: lifecycle.EventSubmit, Tasklet: t}
		if b.memoOn {
			ev.Key, ev.HaveKey = memo.KeyFor(uint64(progID), t.Seed, t.Params)
		}
		pi := b.part(tid).idx
		groups[pi] = append(groups[pi], ev)
	}
	b.mSubmitted.Add(int64(n))
	b.enqueue(c.out, &wire.JobAccepted{Job: job.id, Tasklets: job.total}, c.nc, &c.dropWarned, c.label)
	b.jobMu.Unlock()

	for pi, evs := range groups {
		b.feedPartition(b.parts[pi], evs)
	}
	b.logf("broker: job %d accepted: %d tasklets, qoc %s", job.id, job.total, m.QoC.Mode)
	b.schedule()
	return nil
}

// cancelJob abandons a job's outstanding tasklets.
func (b *Broker) cancelJob(c *consumerState, id core.JobID) {
	b.jobMu.Lock()
	job := b.jobs[id]
	if job == nil || job.consumer != c.id || job.cancelled {
		b.jobMu.Unlock()
		return
	}
	job.cancelled = true
	tids := append([]core.TaskletID(nil), job.tasklets...)
	b.jobMu.Unlock()

	// Migrated tasklets die here: the origin-side record is the unit of
	// ownership; the peer's copy runs to waste and its MigrateResult will
	// find no record.
	migN := 0
	wasMigrated := map[core.TaskletID]bool{}
	if b.opts.ShardID != 0 {
		b.exMu.Lock()
		for _, tid := range tids {
			if _, ok := b.migrated[tid]; ok {
				delete(b.migrated, tid)
				wasMigrated[tid] = true
				migN++
			}
		}
		b.exMu.Unlock()
	}

	dropped := 0
	for _, tid := range tids {
		if wasMigrated[tid] {
			continue
		}
		if b.cancelOne(tid) {
			dropped++
		}
	}
	b.purgePending()
	b.schedule() // a dropped leader may have promoted a waiter

	b.jobMu.Lock()
	// A racing final delivery may have completed the job and sent its
	// JobDone already; only account and reply if the job record survived.
	if b.jobs[id] == job {
		job.failed += dropped + migN
		c.pending -= dropped + migN
		if !c.gone {
			b.enqueue(c.out, &wire.JobDone{Job: job.id, Completed: job.completed, Failed: job.failed}, c.nc, &c.dropWarned, c.label)
		}
	}
	b.jobMu.Unlock()
	b.logf("broker: job %d cancelled", id)
}

// removeConsumer drops a consumer and abandons its outstanding work.
// Idempotent; callers hold no locks.
func (b *Broker) removeConsumer(c *consumerState) {
	b.jobMu.Lock()
	if c.gone {
		b.jobMu.Unlock()
		return
	}
	c.gone = true
	delete(b.consumers, c.id)
	var tids []core.TaskletID
	for jid := range c.jobs {
		job := b.jobs[jid]
		if job == nil {
			continue
		}
		tids = append(tids, job.tasklets...)
		delete(b.jobs, jid)
	}
	b.jobMu.Unlock()

	if b.opts.ShardID != 0 && len(tids) > 0 {
		b.exMu.Lock()
		for _, tid := range tids {
			delete(b.migrated, tid)
		}
		b.exMu.Unlock()
	}
	for _, tid := range tids {
		// Deliver effects from promoted waiters find their jobs deleted and
		// no-op; cancels of in-flight attempts still go out.
		b.cancelOne(tid)
	}
	b.purgePending()
	b.schedule() // a dropped leader may have promoted a waiter
}

// ---------- scheduling ----------

// schedulePassLocked drains the partition placement queues round-robin,
// assigning attempts to providers according to the policy. Entries whose
// tasklet vanished (job cancelled, already complete) are purged. Entries
// with no eligible provider stay queued. Event handlers never call this
// directly — they call schedule, which batches an event-burst into one pass
// run by schedLoop. The pass starts by folding partition-side slot
// settlements into the index (syncDirtyProvidersLocked), keeping the index
// single-writer.
//
// Two per-entry implementations exist: the indexed batch pass (default)
// feeds the queue through the incremental scheduler index — each pick is a
// heap peek or an order-statistics query, zero allocations — while the
// legacy pass (Options.NoIndex, or a policy without an indexed form)
// rebuilds the candidate slice per pick. Both place the same provider
// sequence; the differential tests pin that equivalence.
func (b *Broker) schedulePassLocked() {
	b.syncDirtyProvidersLocked()
	b.mPendingDep.Set(b.pendingN.Load())
	if b.pendingN.Load() == 0 || len(b.providers) == 0 {
		return
	}
	start := time.Now()
	placed := 0
	totalFree := -1
	if b.index == nil {
		totalFree = 0
		for _, p := range b.providers {
			if p.info.Slots > 0 {
				totalFree += int(p.free.Load())
			}
		}
	}
	for _, part := range b.parts {
		part.mu.Lock()
		if b.index != nil {
			placed += b.drainPartitionIndexedLocked(part)
		} else {
			placed += b.drainPartitionLegacyLocked(part, &totalFree)
		}
		part.mu.Unlock()
	}
	b.flushAssignBatchesLocked()
	b.mSchedPassNS.Observe(float64(time.Since(start)))
	if placed > 0 {
		b.mPlaced.Add(int64(placed))
		b.mLaunched.Add(int64(placed)) // one counter update per pass, not per attempt
	}
	b.mPendingDep.Set(b.pendingN.Load())
}

// drainPartitionIndexedLocked walks one partition's queue through the
// incremental index. Callers hold b.mu and part.mu.
func (b *Broker) drainPartitionIndexedLocked(part *partition) int {
	if len(part.pending) == 0 {
		return 0
	}
	placed := 0
	before := len(part.pending)
	remaining := part.pending[:0]
	for idx, tid := range part.pending {
		// Without free capacity nothing below can place; keep the rest of
		// the queue as-is instead of walking it (the queue can hold many
		// thousands of entries and schedule runs on every result).
		if b.index.FreeSlots() <= 0 {
			remaining = append(remaining, part.pending[idx:]...)
			break
		}
		t := part.life.Tasklet(tid)
		if t == nil {
			continue
		}
		b.exclScratch = part.life.AppendActiveProviders(tid, b.exclScratch[:0])
		pid, ok := b.index.Pick(t, b.exclScratch)
		if !ok {
			remaining = append(remaining, tid)
			continue
		}
		p := b.providers[pid]
		if p == nil || p.free.Load() <= 0 {
			remaining = append(remaining, tid)
			continue
		}
		if b.launchAttemptLocked(part, t, p) {
			placed++
		}
	}
	part.pending = remaining
	b.pendingN.Add(int64(len(remaining) - before))
	return placed
}

// drainPartitionLegacyLocked is the full-scan variant: the candidate view
// is rebuilt for every pick because free/backlog change as attempts are
// assigned. Kept for the E10 ablation and for policies without an indexed
// form. totalFree is shared across partitions within one pass.
func (b *Broker) drainPartitionLegacyLocked(part *partition, totalFree *int) int {
	if len(part.pending) == 0 {
		return 0
	}
	placed := 0
	before := len(part.pending)
	remaining := part.pending[:0]
	for idx, tid := range part.pending {
		if *totalFree <= 0 {
			remaining = append(remaining, part.pending[idx:]...)
			break
		}
		t := part.life.Tasklet(tid)
		if t == nil {
			continue
		}
		// Rebuild the candidate view each pick; free/backlog change as we
		// assign.
		cands := b.candScratch[:0]
		for _, p := range b.providers {
			if p.info.Slots == 0 {
				continue // not yet registered
			}
			cands = append(cands, scheduler.Candidate{
				Info: &p.info, FreeSlots: int(p.free.Load()), Backlog: int(p.backlog.Load()),
			})
		}
		b.candScratch = cands
		b.exclScratch = part.life.AppendActiveProviders(tid, b.exclScratch[:0])
		req := scheduler.Request{Tasklet: t, ExcludeIDs: b.exclScratch}
		pid, ok := b.opts.Policy.Pick(req, cands)
		if !ok {
			remaining = append(remaining, tid)
			continue
		}
		p := b.providers[pid]
		if p == nil || p.free.Load() <= 0 {
			remaining = append(remaining, tid)
			continue
		}
		if b.launchAttemptLocked(part, t, p) {
			placed++
		}
		*totalFree--
	}
	part.pending = remaining
	b.pendingN.Add(int64(len(remaining) - before))
	return placed
}

// launchAttemptLocked creates and dispatches one attempt. For
// batch-capable providers the assignment is staged into the provider's
// per-pass AssignBatch (flushed by flushAssignBatchesLocked at the end of
// the placement pass) instead of sent as its own frame. Callers hold b.mu
// and the partition lock of t's partition.
func (b *Broker) launchAttemptLocked(part *partition, t *core.Tasklet, p *providerState) bool {
	aid, ok := part.life.Launched(t.ID, p.info.ID)
	if !ok {
		return false // defensive; callers checked liveness under the same lock
	}
	p.free.Add(-1)
	p.backlog.Add(1)
	p.assigned++
	b.updateReliabilityLocked(p)
	b.index.Assign(p.info.ID) // after the reliability update so rank refreshes

	a := wire.Assign{
		Attempt: aid,
		Tasklet: t.ID,
		Program: t.Program,
		Params:  t.Params,
		Fuel:    t.Fuel,
		Seed:    t.Seed,
		// A provider that never advertised the flags tail can't decode it;
		// drop the flag rather than the peer — a legacy provider has no
		// result memo for NoCache to bypass anyway.
		NoCache: t.QoC.NoCache && p.caps&wire.CapFlagsTail != 0,
	}
	var progData []byte
	if b.opts.DisableProgramCache {
		progData = b.program(t.Program)
	} else if !p.sent[t.Program] {
		progData = b.program(t.Program)
		p.sent[t.Program] = true
	}

	if !b.opts.NoBatch && p.caps&wire.CapBatch != 0 {
		if p.staged == nil {
			p.staged = &wire.AssignBatch{}
			b.stagedScratch = append(b.stagedScratch, p)
		}
		if len(progData) > 0 && !batchHasProgram(p.staged, t.Program) {
			// Program bytes are deduplicated within the frame: shipped once
			// in the table however many entries reference them.
			p.staged.Programs = append(p.staged.Programs, wire.ProgramBlob{ID: t.Program, Data: progData})
		}
		p.staged.Assigns = append(p.staged.Assigns, a)
		return true
	}
	a.ProgramData = progData
	b.enqueue(p.out, &a, p.nc, &p.dropWarned, p.label)
	return true
}

// program returns the stored bytecode for id (nil if unknown).
func (b *Broker) program(id core.ProgramID) []byte {
	b.progMu.RLock()
	data := b.programs[id]
	b.progMu.RUnlock()
	return data
}

// batchHasProgram reports whether the staged batch's program table already
// carries id. Tables hold the pass's distinct fresh programs — almost
// always zero or one entry — so a linear scan wins over any map.
func batchHasProgram(ab *wire.AssignBatch, id core.ProgramID) bool {
	for i := range ab.Programs {
		if ab.Programs[i].ID == id {
			return true
		}
	}
	return false
}

// flushAssignBatchesLocked ships every staged AssignBatch accumulated by
// the current placement pass: one frame per provider per pass. A batch that
// holds a single assignment degenerates to a plain Assign frame, so
// low-rate traffic stays byte-identical to the pre-batch revision.
func (b *Broker) flushAssignBatchesLocked() {
	for _, p := range b.stagedScratch {
		ab := p.staged
		p.staged = nil
		if ab == nil || len(ab.Assigns) == 0 {
			continue
		}
		if len(ab.Assigns) == 1 {
			a := ab.Assigns[0]
			if len(ab.Programs) == 1 {
				a.ProgramData = ab.Programs[0].Data
			}
			b.enqueue(p.out, &a, p.nc, &p.dropWarned, p.label)
			continue
		}
		b.enqueue(p.out, ab, p.nc, &p.dropWarned, p.label)
	}
	b.stagedScratch = b.stagedScratch[:0]
}

// fleetInfo builds the provider-directory reply for QueryFleet.
func (b *Broker) fleetInfo() *wire.FleetInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	info := &wire.FleetInfo{Pending: int(b.pendingN.Load())}
	for _, p := range b.providers {
		info.Providers = append(info.Providers, wire.ProviderEntry{
			ID:          p.info.ID,
			Class:       p.info.Class,
			Slots:       p.info.Slots,
			FreeSlots:   int(p.free.Load()),
			Speed:       p.info.Speed,
			Reliability: p.info.Reliability,
			Executed:    p.finished.Load(),
		})
	}
	sort.Slice(info.Providers, func(i, j int) bool {
		return info.Providers[i].ID < info.Providers[j].ID
	})
	return info
}

// Snapshot is a point-in-time view of broker state for tests and the CLI.
type Snapshot struct {
	Providers []core.ProviderInfo
	Pending   int
	InFlight  int
	Jobs      int
}

// Snapshot returns current broker state.
func (b *Broker) Snapshot() Snapshot {
	s := Snapshot{Pending: int(b.pendingN.Load())}
	for _, part := range b.parts {
		part.mu.Lock()
		s.InFlight += part.life.InFlight()
		part.mu.Unlock()
	}
	b.jobMu.Lock()
	s.Jobs = len(b.jobs)
	b.jobMu.Unlock()
	b.mu.Lock()
	for _, p := range b.providers {
		info := p.info
		info.LastHeartbeat = time.Unix(0, p.lastBeat.Load())
		s.Providers = append(s.Providers, info)
	}
	b.mu.Unlock()
	return s
}

var _ io.Closer = (*Broker)(nil)
