// Package broker implements the Tasklet broker: the mediator between
// resource consumers and providers. It keeps the provider registry with
// heartbeat-based failure detection, accepts jobs from consumers, drives
// the pluggable scheduling policy and the QoC engine, routes bytecode and
// results, and re-issues attempts lost to provider churn.
//
// Concurrency model: one reader goroutine per connection, one writer
// goroutine per connection (fed by a bounded queue so a slow peer cannot
// stall the broker), one scheduler goroutine, and a single mutex guarding
// all scheduling state. State-mutating work is short and never blocks on
// the network. Events (results, joins, deadlines) do not run placement
// themselves: they set a dirty flag and wake the scheduler, so a burst of
// events costs one placement pass instead of one per event, and result
// routing never serializes behind a scheduling walk. Heartbeats bypass the
// mutex entirely (atomic timestamp per provider). Writer goroutines drain
// their queue in batches so one socket flush covers a burst of Assigns or
// ResultPushes (see wire.Conn for the flush policy).
package broker

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/qoc"
	"repro/internal/scheduler"
	"repro/internal/tvm"
	"repro/internal/wire"
)

// Options configures a Broker. The zero value is usable: work-stealing
// policy, 5-second heartbeat timeout, silent logger.
type Options struct {
	// Policy is the placement policy; nil selects work_steal.
	Policy scheduler.Policy
	// HeartbeatTimeout is how long a provider may stay silent before it is
	// declared dead. Zero selects 5s.
	HeartbeatTimeout time.Duration
	// Logger receives operational logs; nil discards them.
	Logger *log.Logger
	// Metrics receives broker counters and histograms; nil allocates a
	// private registry (retrievable via Broker.Metrics).
	Metrics *metrics.Registry
	// MaxPendingPerConsumer bounds queued tasklets per consumer; zero
	// selects 1<<20.
	MaxPendingPerConsumer int
	// DisableProgramCache ships the full bytecode with every assignment
	// instead of once per provider. Exists for the program-cache ablation
	// benchmark; never enable it in a real deployment.
	DisableProgramCache bool

	// MemoEntries, MemoBytes, and MemoTTL configure the broker-tier result
	// memo (content-addressed cache of QoC-finalized results, plus
	// coalescing of identical in-flight tasklets). Zero selects the memo
	// package defaults (memo.DefaultMaxEntries etc.); any negative value
	// disables memoization and coalescing entirely.
	MemoEntries int
	MemoBytes   int
	MemoTTL     time.Duration

	// NoCoalesce disables write coalescing on this broker's connections:
	// writer loops send one message per flush instead of draining their
	// queue in batches, and the wire layer flushes after every frame.
	// Exists for the coalescing ablation and differential tests; frame
	// bytes are identical either way.
	NoCoalesce bool

	// NoIndex disables the incremental scheduler index and forces the
	// legacy full-scan placement path (rebuild candidates + Policy.Pick per
	// pending tasklet). Exists for the placement ablation (experiment E10)
	// and the differential tests; provider choices are identical either
	// way. Custom policies without an index fall back to the scan
	// automatically.
	NoIndex bool
}

// sendQueueDepth bounds per-connection outgoing messages. A peer that
// cannot drain this many messages is broken or hostile and is dropped.
const sendQueueDepth = 4096

// writerBatchMax bounds how many queued messages a writer loop folds into
// one flush.
const writerBatchMax = 128

// Broker is the central coordinator. Create with New, start with Serve.
type Broker struct {
	opts Options
	reg  *metrics.Registry
	logf func(format string, args ...any)

	mu        sync.Mutex
	closed    bool
	ln        net.Listener
	providers map[core.ProviderID]*providerState
	consumers map[core.ConsumerID]*consumerState
	jobs      map[core.JobID]*jobState
	tasklets  map[core.TaskletID]*taskletState
	attempts  map[core.AttemptID]*attemptState
	programs  map[core.ProgramID][]byte

	// pending is the placement queue: one entry per attempt awaiting a
	// provider, in FIFO order.
	pending []core.TaskletID

	// index is the incremental placement index mirroring provider
	// free/backlog state; nil when Options.NoIndex is set or the policy has
	// no indexed form, in which case the legacy scan runs. All Index
	// methods are nil-safe, so event handlers update it unconditionally.
	index *scheduler.Index

	// exclScratch and candScratch are placement-pass scratch buffers,
	// reused across picks so a pass over a deep queue performs no
	// allocations. Only touched under b.mu by the scheduler goroutine.
	exclScratch []core.ProviderID
	candScratch []scheduler.Candidate

	// schedDirty marks that scheduling state changed since the last
	// placement pass; schedWake pokes the scheduler goroutine. Events
	// between two passes collapse into one flag, so a burst costs one pass.
	schedDirty bool
	schedWake  chan struct{}

	// memo caches QoC-finalized results by content; flights coalesces
	// identical in-flight tasklets (cluster-wide singleflight). Both nil
	// when memoization is disabled; all their methods are nil-safe.
	memo    *memo.Cache
	flights *memo.FlightTable

	nextProvider core.ProviderID
	nextConsumer core.ConsumerID
	nextJob      core.JobID
	nextTasklet  core.TaskletID
	nextAttempt  core.AttemptID

	stop chan struct{}
	wg   sync.WaitGroup

	// Hot-path metric handles, resolved once at construction so the
	// per-result path never takes the registry lock.
	mSendDropped *metrics.Counter
	mAttemptsOK  *metrics.Counter
	mAttemptsFlt *metrics.Counter
	mAttemptsOth *metrics.Counter
	mLaunched    *metrics.Counter
	mCompleted   *metrics.Counter
	mFailed      *metrics.Counter
	mExecMS      *metrics.Histogram
	mLatencyMS   *metrics.Histogram
	mSchedPassNS *metrics.Histogram
	mPendingDep  *metrics.Gauge
	mPlaced      *metrics.Counter
}

type providerState struct {
	info     core.ProviderInfo
	out      chan wire.Message
	nc       net.Conn
	label    string // "provider N", precomputed for hot-path logs
	caps     uint8  // protocol extensions advertised in Hello
	free     int
	backlog  int
	sent     map[core.ProgramID]bool // programs already shipped
	assigned int
	finished int // attempts that returned any result
	gone     bool

	// lastBeat is the UnixNano timestamp of the latest heartbeat, updated
	// without the broker mutex so heartbeats never queue behind scheduling.
	lastBeat atomic.Int64

	// dropWarned limits the send-queue-overflow log to once per connection.
	dropWarned atomic.Bool
}

type consumerState struct {
	id      core.ConsumerID
	out     chan wire.Message
	nc      net.Conn
	label   string // "consumer N", precomputed for hot-path logs
	jobs    map[core.JobID]bool
	pending int // queued tasklets across this consumer's jobs
	gone    bool

	dropWarned atomic.Bool
}

type jobState struct {
	id        core.JobID
	consumer  core.ConsumerID
	tasklets  []core.TaskletID
	total     int
	completed int
	failed    int
	cancelled bool
}

// flightRole records a tasklet's position in its coalescing flight, if any.
type flightRole uint8

const (
	flightNone   flightRole = iota // not coalesced (memo off, NoCache, unique)
	flightLeader                   // drives the real attempt fan-out
	flightWaiter                   // receives a copy of the leader's final
)

type taskletState struct {
	t        core.Tasklet
	tracker  *qoc.Tracker
	deadline *time.Timer
	coKey    memo.FlightKey
	role     flightRole
}

type attemptState struct {
	id        core.AttemptID
	tasklet   core.TaskletID
	provider  core.ProviderID
	abandoned bool // result will be ignored; slot freed on arrival or death
}

// New creates a broker with the given options.
func New(opts Options) *Broker {
	if opts.Policy == nil {
		opts.Policy = scheduler.NewWorkSteal()
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * time.Second
	}
	if opts.MaxPendingPerConsumer <= 0 {
		opts.MaxPendingPerConsumer = 1 << 20
	}
	reg := opts.Metrics
	if reg == nil {
		reg = &metrics.Registry{}
	}
	logf := func(string, ...any) {}
	if opts.Logger != nil {
		logf = opts.Logger.Printf
	}
	b := &Broker{
		opts:      opts,
		reg:       reg,
		logf:      logf,
		providers: map[core.ProviderID]*providerState{},
		consumers: map[core.ConsumerID]*consumerState{},
		jobs:      map[core.JobID]*jobState{},
		tasklets:  map[core.TaskletID]*taskletState{},
		attempts:  map[core.AttemptID]*attemptState{},
		programs:  map[core.ProgramID][]byte{},
		schedWake: make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	b.mSendDropped = reg.Counter("broker.send_dropped")
	b.mAttemptsOK = reg.Counter("attempts.ok")
	b.mAttemptsFlt = reg.Counter("attempts.fault")
	b.mAttemptsOth = reg.Counter("attempts.other")
	b.mLaunched = reg.Counter("attempts.launched")
	b.mCompleted = reg.Counter("tasklets.completed")
	b.mFailed = reg.Counter("tasklets.failed")
	b.mExecMS = reg.Histogram("attempt.exec_ms")
	b.mLatencyMS = reg.Histogram("tasklet.latency_ms")
	b.mSchedPassNS = reg.Histogram("broker.sched_pass_ns")
	b.mPendingDep = reg.Gauge("broker.pending_depth")
	b.mPlaced = reg.Counter("broker.placed_per_pass")
	if !opts.NoIndex {
		// Custom policies outside the scheduler package have no indexed
		// form; the legacy scan handles them.
		if ix, err := scheduler.NewIndexFor(opts.Policy); err == nil {
			b.index = ix
		}
	}
	if opts.MemoEntries >= 0 && opts.MemoBytes >= 0 && opts.MemoTTL >= 0 {
		b.memo = memo.New(memo.Config{
			MaxEntries: opts.MemoEntries,
			MaxBytes:   opts.MemoBytes,
			TTL:        opts.MemoTTL,
			Metrics:    reg,
			Prefix:     "memo.",
		})
		b.flights = memo.NewFlightTable(reg, "memo.")
	}
	return b
}

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in background
// goroutines. It returns the bound address.
func (b *Broker) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("broker: listen %s: %w", addr, err)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ln.Close()
		return "", errors.New("broker: already closed")
	}
	b.ln = ln
	b.mu.Unlock()

	b.wg.Add(3)
	go func() {
		defer b.wg.Done()
		b.acceptLoop(ln)
	}()
	go func() {
		defer b.wg.Done()
		b.reaperLoop()
	}()
	go func() {
		defer b.wg.Done()
		b.schedLoop()
	}()
	return ln.Addr().String(), nil
}

// Close stops the broker: closes the listener and all connections, and
// waits for the handler goroutines to drain.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	close(b.stop)
	ln := b.ln
	var conns []net.Conn
	for _, p := range b.providers {
		conns = append(conns, p.nc)
	}
	for _, c := range b.consumers {
		conns = append(conns, c.nc)
	}
	b.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	b.wg.Wait()
	return nil
}

func (b *Broker) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handleConn(nc)
		}()
	}
}

// reaperLoop expires providers that miss heartbeats.
func (b *Broker) reaperLoop() {
	interval := b.opts.HeartbeatTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-b.stop:
			return
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		cutoff := time.Now().Add(-b.opts.HeartbeatTimeout).UnixNano()
		var dead []*providerState
		for _, p := range b.providers {
			if !p.gone && p.lastBeat.Load() < cutoff {
				dead = append(dead, p)
			}
		}
		for _, p := range dead {
			b.logf("broker: provider %d missed heartbeats, removing", p.info.ID)
			b.removeProviderLocked(p)
		}
		b.mu.Unlock()
		for _, p := range dead {
			p.nc.Close()
		}
	}
}

// handleConn performs the handshake and dispatches to the role loop.
func (b *Broker) handleConn(nc net.Conn) {
	defer nc.Close()
	conn := wire.NewConn(nc)
	conn.NoCoalesce = b.opts.NoCoalesce
	conn.ReadTimeout = 30 * time.Second

	msg, err := conn.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeProtocol, Msg: "expected hello"})
		return
	}
	if hello.Version != wire.ProtocolVersion {
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeVersion,
			Msg: fmt.Sprintf("protocol version %d unsupported", hello.Version)})
		return
	}

	switch hello.Role {
	case wire.RoleProvider:
		b.serveProvider(nc, conn, hello)
	case wire.RoleConsumer:
		b.serveConsumer(nc, conn, hello)
	default:
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeProtocol, Msg: "unknown role"})
	}
}

// schedLoop is the single scheduler goroutine: it runs one placement pass
// per wake-up. While a pass holds b.mu, arriving events queue on the mutex,
// set the dirty flag, and are all covered by the next pass — so a burst of
// N results costs one or two walks of the placement queue, not N.
func (b *Broker) schedLoop() {
	for {
		select {
		case <-b.schedWake:
		case <-b.stop:
			return
		}
		b.mu.Lock()
		for b.schedDirty && !b.closed {
			b.schedDirty = false
			b.schedulePassLocked()
		}
		b.mu.Unlock()
	}
}

// scheduleLocked records that scheduling state changed and wakes the
// scheduler goroutine. Callers hold b.mu; the pass itself runs on the
// scheduler goroutine so event handlers return immediately.
func (b *Broker) scheduleLocked() {
	b.schedDirty = true
	select {
	case b.schedWake <- struct{}{}:
	default: // a wake-up is already pending; it will cover this event
	}
}

// writerLoop drains a connection's outgoing queue. Unless coalescing is
// disabled, it folds whatever burst is queued (up to writerBatchMax) into
// one SendBatch so a single flush — one syscall — covers the burst.
func (b *Broker) writerLoop(conn *wire.Conn, out <-chan wire.Message, nc net.Conn) {
	batch := make([]wire.Message, 0, writerBatchMax)
	for m := range out {
		batch = append(batch[:0], m)
		if !b.opts.NoCoalesce {
		drain:
			for len(batch) < writerBatchMax {
				select {
				case mm, ok := <-out:
					if !ok {
						break drain
					}
					batch = append(batch, mm)
				default:
					break drain
				}
			}
		}
		if err := conn.SendBatch(batch); err != nil {
			nc.Close() // unblocks the reader, which tears the peer down
			// Drain remaining messages so enqueuers never block.
			for range out {
			}
			return
		}
	}
}

// enqueue appends to a bounded send queue. A peer that cannot drain
// sendQueueDepth messages is broken or hostile: the drop is counted in
// broker.send_dropped, logged once per connection, and the connection is
// closed so the reader tears the peer down.
func (b *Broker) enqueue(out chan wire.Message, m wire.Message, nc net.Conn, warned *atomic.Bool, label string) {
	select {
	case out <- m:
	default:
		b.mSendDropped.Inc()
		if !warned.Swap(true) {
			b.logf("broker: %s send queue full; dropping %s and closing the connection", label, m.Type())
		}
		nc.Close()
	}
}

// ---------- provider side ----------

func (b *Broker) serveProvider(nc net.Conn, conn *wire.Conn, hello *wire.Hello) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.nextProvider++
	id := b.nextProvider
	now := time.Now()
	p := &providerState{
		info: core.ProviderInfo{
			ID:            id,
			Addr:          conn.RemoteAddr(),
			Reliability:   1,
			Joined:        now,
			LastHeartbeat: now,
		},
		out:   make(chan wire.Message, sendQueueDepth),
		nc:    nc,
		label: fmt.Sprintf("provider %d", id),
		caps:  hello.Caps,
		sent:  map[core.ProgramID]bool{},
	}
	p.lastBeat.Store(now.UnixNano())
	b.providers[id] = p
	b.mu.Unlock()

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.writerLoop(conn, p.out, nc)
	}()

	b.enqueue(p.out, &wire.Welcome{ID: uint64(id)}, nc, &p.dropWarned, p.label)
	b.reg.Counter("providers.joined").Inc()
	b.logf("broker: provider %d connected from %s (%s)", id, conn.RemoteAddr(), hello.Name)

	conn.ReadTimeout = b.opts.HeartbeatTimeout * 2
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		switch m := msg.(type) {
		case *wire.Register:
			p.lastBeat.Store(time.Now().UnixNano())
			b.mu.Lock()
			p.info.Slots = m.Slots
			p.info.Class = m.Class
			p.info.Speed = m.Speed
			p.free = m.Slots
			b.index.Upsert(&p.info, p.free, p.backlog)
			b.scheduleLocked()
			b.mu.Unlock()
			b.logf("broker: provider %d registered: %d slots, %.1f Mops/s, class %s",
				id, m.Slots, m.Speed, m.Class)
		case *wire.Heartbeat:
			// Liveness only; no broker state changes, so heartbeats never
			// queue behind the scheduling mutex.
			p.lastBeat.Store(time.Now().UnixNano())
		case *wire.AttemptResult:
			b.onAttemptResult(p, m)
		case *wire.Bye:
			goto done
		default:
			b.logf("broker: provider %d sent unexpected %s", id, msg.Type())
			goto done
		}
	}
done:
	b.mu.Lock()
	b.removeProviderLocked(p)
	b.mu.Unlock()
	close(p.out)
	b.reg.Counter("providers.lost").Inc()
	b.logf("broker: provider %d disconnected", id)
}

// removeProviderLocked declares a provider dead: its in-flight attempts are
// fed back to the QoC engine as lost. Idempotent.
func (b *Broker) removeProviderLocked(p *providerState) {
	if p.gone {
		return
	}
	p.gone = true
	delete(b.providers, p.info.ID)
	b.index.Remove(p.info.ID)

	var lost []*attemptState
	for _, a := range b.attempts {
		if a.provider == p.info.ID {
			lost = append(lost, a)
		}
	}
	for _, a := range lost {
		delete(b.attempts, a.id)
		if a.abandoned {
			continue
		}
		ts := b.tasklets[a.tasklet]
		if ts == nil {
			continue
		}
		b.reg.Counter("attempts.lost").Inc()
		d := ts.tracker.OnResult(core.Result{
			Attempt: a.id, Status: core.StatusLost, Provider: p.info.ID,
		})
		b.applyDecisionLocked(ts, d)
	}
	b.scheduleLocked()
}

// onAttemptResult processes a provider's result report.
func (b *Broker) onAttemptResult(p *providerState, m *wire.AttemptResult) {
	b.mu.Lock()
	defer b.mu.Unlock()

	a, ok := b.attempts[m.Attempt]
	if !ok || a.provider != p.info.ID {
		return // stale or duplicate
	}
	delete(b.attempts, m.Attempt)
	p.free++
	p.backlog--
	p.finished++
	b.updateReliabilityLocked(p)
	b.index.Complete(p.info.ID) // after the reliability update so rank refreshes

	if a.abandoned {
		b.scheduleLocked()
		return
	}
	ts := b.tasklets[a.tasklet]
	if ts == nil {
		b.scheduleLocked()
		return
	}

	res := core.Result{
		Tasklet:   m.Tasklet,
		Attempt:   m.Attempt,
		Provider:  p.info.ID,
		Status:    m.Status,
		Return:    m.Return,
		Emitted:   m.Emitted,
		FaultCode: m.FaultCode,
		FaultMsg:  m.FaultMsg,
		FuelUsed:  m.FuelUsed,
		Exec:      time.Duration(m.ExecNanos),
	}
	switch m.Status {
	case core.StatusOK:
		b.mAttemptsOK.Inc()
	case core.StatusFault:
		b.mAttemptsFlt.Inc()
	default:
		b.mAttemptsOth.Inc()
	}
	b.mExecMS.Observe(float64(m.ExecNanos) / 1e6)

	d := ts.tracker.OnResult(res)
	b.applyDecisionLocked(ts, d)
	b.scheduleLocked()
}

// updateReliabilityLocked refreshes the completion-ratio estimate.
func (b *Broker) updateReliabilityLocked(p *providerState) {
	if p.assigned > 0 {
		p.info.Reliability = float64(p.finished) / float64(p.assigned)
		if p.info.Reliability > 1 {
			p.info.Reliability = 1
		}
	}
}

// ---------- consumer side ----------

func (b *Broker) serveConsumer(nc net.Conn, conn *wire.Conn, hello *wire.Hello) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.nextConsumer++
	id := b.nextConsumer
	c := &consumerState{
		id:    id,
		out:   make(chan wire.Message, sendQueueDepth),
		nc:    nc,
		label: fmt.Sprintf("consumer %d", id),
		jobs:  map[core.JobID]bool{},
	}
	b.consumers[id] = c
	b.mu.Unlock()

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.writerLoop(conn, c.out, nc)
	}()

	b.enqueue(c.out, &wire.Welcome{ID: uint64(id)}, nc, &c.dropWarned, c.label)
	b.logf("broker: consumer %d connected from %s (%s)", id, conn.RemoteAddr(), hello.Name)

	conn.ReadTimeout = 0 // consumers may idle while awaiting results
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		switch m := msg.(type) {
		case *wire.SubmitJob:
			if err := b.acceptJob(c, m); err != nil {
				b.enqueue(c.out, &wire.ErrorMsg{Code: wire.ErrCodeBadJob, Msg: err.Error()}, nc, &c.dropWarned, c.label)
			}
		case *wire.CancelJob:
			b.cancelJob(c, m.Job)
		case *wire.QueryFleet:
			b.enqueue(c.out, b.fleetInfo(), nc, &c.dropWarned, c.label)
		case *wire.Bye:
			goto done
		default:
			b.logf("broker: consumer %d sent unexpected %s", id, msg.Type())
			goto done
		}
	}
done:
	b.mu.Lock()
	b.removeConsumerLocked(c)
	b.mu.Unlock()
	close(c.out)
	b.logf("broker: consumer %d disconnected", id)
}

// acceptJob validates and admits a job, creating its tasklets and trackers.
func (b *Broker) acceptJob(c *consumerState, m *wire.SubmitJob) error {
	spec := core.JobSpec{
		Program: m.Program, Params: m.Params, QoC: m.QoC, Fuel: m.Fuel, Seed: m.Seed,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	fuel := m.Fuel
	if fuel == 0 {
		fuel = 100_000_000
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if c.gone {
		return errors.New("broker: consumer disconnected")
	}
	if c.pending+len(m.Params) > b.opts.MaxPendingPerConsumer {
		return fmt.Errorf("broker: consumer queue limit %d exceeded", b.opts.MaxPendingPerConsumer)
	}

	progID := core.HashProgram(m.Program)
	if _, ok := b.programs[progID]; !ok {
		data := make([]byte, len(m.Program))
		copy(data, m.Program)
		b.programs[progID] = data
	}

	b.nextJob++
	job := &jobState{id: b.nextJob, consumer: c.id, total: len(m.Params)}
	b.jobs[job.id] = job
	c.jobs[job.id] = true

	// Cache hits collected during admission; delivered only after the
	// JobAccepted below so the consumer has registered the job before its
	// first ResultPush arrives.
	type hit struct {
		ts    *taskletState
		final core.Result
	}
	var hits []hit

	now := time.Now()
	for i, params := range m.Params {
		b.nextTasklet++
		t := core.Tasklet{
			ID: b.nextTasklet, Job: job.id, Index: i,
			Program: progID, Params: params,
			QoC: m.QoC, Fuel: fuel, Seed: m.Seed, Submitted: now,
		}
		ts := &taskletState{t: t}
		ts.tracker = qoc.NewTracker(&ts.t)
		b.tasklets[t.ID] = ts
		job.tasklets = append(job.tasklets, t.ID)
		c.pending++

		goal := ts.tracker.Goal()
		if b.memo != nil && !goal.NoCache {
			if key, ok := memo.KeyFor(uint64(progID), t.Seed, t.Params); ok {
				if e := b.memo.Get(key, goal.VoteStrength(), t.Fuel); e != nil {
					// Finalized identical work already cached: deliver
					// without touching a provider (Attempts = 0).
					ret, em := e.CachedResult()
					hits = append(hits, hit{ts, core.Result{
						Tasklet: t.ID, Job: job.id, Index: i,
						Status: core.StatusOK, Return: ret, Emitted: em,
						FuelUsed: e.FuelUsed, Exec: e.Exec,
					}})
					continue
				}
				ts.coKey = memo.FlightKey{
					Content:  key,
					Mode:     uint8(goal.Mode),
					Replicas: goal.Replicas,
					Fuel:     t.Fuel,
				}
				if b.flights.Join(ts.coKey, uint64(t.ID)) {
					ts.role = flightLeader
				} else {
					// Coalesced behind an identical in-flight tasklet: no
					// attempts of its own; the leader's final fans out to
					// it. The deadline still applies independently.
					ts.role = flightWaiter
					if goal.Deadline > 0 {
						tid := t.ID
						ts.deadline = time.AfterFunc(goal.Deadline, func() { b.onDeadline(tid) })
					}
					continue
				}
			}
		}

		d := ts.tracker.Start()
		for n := 0; n < d.Launch; n++ {
			b.pending = append(b.pending, t.ID)
		}
		if goal.Deadline > 0 {
			tid := t.ID
			ts.deadline = time.AfterFunc(goal.Deadline, func() { b.onDeadline(tid) })
		}
	}
	b.reg.Counter("tasklets.submitted").Add(int64(len(m.Params)))
	b.enqueue(c.out, &wire.JobAccepted{Job: job.id, Tasklets: job.total}, c.nc, &c.dropWarned, c.label)
	for _, h := range hits {
		b.deliverLocked(h.ts, h.final, 0)
	}
	b.logf("broker: job %d accepted: %d tasklets, qoc %s", job.id, job.total, m.QoC.Mode)
	b.scheduleLocked()
	return nil
}

// onDeadline fails a tasklet whose wall-clock budget expired.
func (b *Broker) onDeadline(id core.TaskletID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ts := b.tasklets[id]
	if ts == nil || ts.tracker.Done() {
		return
	}
	b.reg.Counter("tasklets.deadline_expired").Inc()
	b.finishTaskletLocked(ts, core.Result{
		Tasklet: ts.t.ID, Job: ts.t.Job, Index: ts.t.Index,
		Status: core.StatusFault, FaultMsg: "deadline exceeded",
	})
	b.scheduleLocked() // a deadlined leader's dissolved flight re-queues its waiters
}

// cancelJob abandons a job's outstanding tasklets.
func (b *Broker) cancelJob(c *consumerState, id core.JobID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	job := b.jobs[id]
	if job == nil || job.consumer != c.id || job.cancelled {
		return
	}
	job.cancelled = true
	for _, tid := range job.tasklets {
		ts := b.tasklets[tid]
		if ts == nil || ts.tracker.Done() {
			continue
		}
		b.dropTaskletLocked(ts)
		job.failed++
		c.pending--
	}
	b.purgePendingLocked()
	b.scheduleLocked() // a dropped leader may have promoted a waiter
	b.enqueue(c.out, &wire.JobDone{Job: job.id, Completed: job.completed, Failed: job.failed}, c.nc, &c.dropWarned, c.label)
	b.logf("broker: job %d cancelled", id)
}

// removeConsumerLocked drops a consumer and abandons its outstanding work.
func (b *Broker) removeConsumerLocked(c *consumerState) {
	if c.gone {
		return
	}
	c.gone = true
	delete(b.consumers, c.id)
	for jid := range c.jobs {
		job := b.jobs[jid]
		if job == nil {
			continue
		}
		for _, tid := range job.tasklets {
			if ts := b.tasklets[tid]; ts != nil && !ts.tracker.Done() {
				b.dropTaskletLocked(ts)
			}
		}
		delete(b.jobs, jid)
	}
	b.purgePendingLocked()
	b.scheduleLocked() // a dropped leader may have promoted a waiter
}

// dropTaskletLocked abandons a tasklet's attempts and removes it. Pending
// queue entries are purged lazily by scheduleLocked. A dropped flight leader
// hands the flight to its first waiter, which starts real scheduling; a
// dropped waiter just leaves the flight.
func (b *Broker) dropTaskletLocked(ts *taskletState) {
	if ts.deadline != nil {
		ts.deadline.Stop()
	}
	for aid, a := range b.attempts {
		if a.tasklet == ts.t.ID && !a.abandoned {
			a.abandoned = true
			if p := b.providers[a.provider]; p != nil {
				b.enqueue(p.out, &wire.CancelAttempt{Attempt: aid}, p.nc, &p.dropWarned, p.label)
			}
		}
	}
	switch ts.role {
	case flightWaiter:
		b.flights.DropWaiter(ts.coKey, uint64(ts.t.ID))
	case flightLeader:
		if nl, ok := b.flights.DropLeader(ts.coKey); ok {
			if nts := b.tasklets[core.TaskletID(nl)]; nts != nil {
				nts.role = flightLeader
				b.applyDecisionLocked(nts, nts.tracker.Start())
			}
		}
	}
	ts.role = flightNone
	delete(b.tasklets, ts.t.ID)
}

// finishTaskletLocked forces a final result (deadline, cancellation paths)
// and delivers it.
func (b *Broker) finishTaskletLocked(ts *taskletState, final core.Result) {
	for aid, a := range b.attempts {
		if a.tasklet == ts.t.ID && !a.abandoned {
			a.abandoned = true
			if p := b.providers[a.provider]; p != nil {
				b.enqueue(p.out, &wire.CancelAttempt{Attempt: aid}, p.nc, &p.dropWarned, p.label)
			}
		}
	}
	b.finalizeLocked(ts, final, ts.tracker.Attempts())
}

// applyDecisionLocked reacts to a QoC engine decision for ts.
func (b *Broker) applyDecisionLocked(ts *taskletState, d qoc.Decision) {
	for n := 0; n < d.Launch; n++ {
		b.pending = append(b.pending, ts.t.ID)
	}
	for _, aid := range d.Cancel {
		if a := b.attempts[aid]; a != nil && !a.abandoned {
			a.abandoned = true
			if p := b.providers[a.provider]; p != nil {
				b.enqueue(p.out, &wire.CancelAttempt{Attempt: aid}, p.nc, &p.dropWarned, p.label)
			}
		}
	}
	if d.Done {
		b.finalizeLocked(ts, d.Final, ts.tracker.Attempts())
	}
}

// finalizeLocked delivers a tasklet's final result and settles its
// coalescing flight: a leader's successful final enters the memo cache and
// fans out to every waiter; a leader's failed final dissolves the flight so
// each waiter schedules independently (failures describe this run — losses,
// deadlines — and must not be shared or memoized). Waiters that finalize on
// their own (deadline) just leave the flight.
func (b *Broker) finalizeLocked(ts *taskletState, final core.Result, attempts int) {
	role, fk := ts.role, ts.coKey
	ts.role = flightNone
	cacheable := ts.tracker.FinalCacheable()
	strength := ts.tracker.Goal().VoteStrength()
	b.deliverLocked(ts, final, attempts)

	switch role {
	case flightWaiter:
		b.flights.DropWaiter(fk, uint64(ts.t.ID))
	case flightLeader:
		if final.Status == core.StatusOK {
			if cacheable {
				b.memo.Put(fk.Content, final.Return, final.Emitted,
					final.FuelUsed, final.Exec, strength)
			}
			for _, w := range b.flights.Complete(fk) {
				wts := b.tasklets[core.TaskletID(w)]
				if wts == nil {
					continue
				}
				wts.role = flightNone
				ret := final.Return.Clone()
				var em []tvm.Value
				if len(final.Emitted) > 0 {
					em = make([]tvm.Value, len(final.Emitted))
					for i, v := range final.Emitted {
						em[i] = v.Clone()
					}
				}
				// Like a cache hit, a coalesced waiter consumed no attempts
				// of its own — the leader's fan-out is reported on the
				// leader's result only.
				b.deliverLocked(wts, core.Result{
					Tasklet: wts.t.ID, Job: wts.t.Job, Index: wts.t.Index,
					Provider: final.Provider, Status: core.StatusOK,
					Return: ret, Emitted: em,
					FuelUsed: final.FuelUsed, Exec: final.Exec,
				}, 0)
			}
		} else {
			for _, w := range b.flights.Complete(fk) {
				wts := b.tasklets[core.TaskletID(w)]
				if wts == nil {
					continue
				}
				wts.role = flightNone
				b.applyDecisionLocked(wts, wts.tracker.Start())
			}
		}
	}
}

// deliverLocked pushes a final result to the consumer and updates job
// accounting.
func (b *Broker) deliverLocked(ts *taskletState, final core.Result, attempts int) {
	if ts.deadline != nil {
		ts.deadline.Stop()
	}
	delete(b.tasklets, ts.t.ID)

	job := b.jobs[ts.t.Job]
	if job == nil {
		return
	}
	if final.OK() {
		job.completed++
		b.mCompleted.Inc()
	} else {
		job.failed++
		b.mFailed.Inc()
	}
	b.mLatencyMS.ObserveDuration(time.Since(ts.t.Submitted))

	c := b.consumers[job.consumer]
	if c == nil || c.gone {
		return
	}
	c.pending--
	b.enqueue(c.out, &wire.ResultPush{
		Job:       final.Job,
		Tasklet:   final.Tasklet,
		Index:     final.Index,
		Status:    final.Status,
		Return:    final.Return,
		Emitted:   final.Emitted,
		FaultCode: final.FaultCode,
		FaultMsg:  final.FaultMsg,
		Provider:  final.Provider,
		Attempts:  attempts,
		ExecNanos: int64(final.Exec),
	}, c.nc, &c.dropWarned, c.label)
	if job.completed+job.failed == job.total {
		b.enqueue(c.out, &wire.JobDone{Job: job.id, Completed: job.completed, Failed: job.failed}, c.nc, &c.dropWarned, c.label)
		delete(b.jobs, job.id)
		delete(c.jobs, job.id)
		b.logf("broker: job %d done: %d completed, %d failed", job.id, job.completed, job.failed)
	}
}

// ---------- scheduling ----------

// schedulePassLocked walks the placement queue, assigning attempts to
// providers according to the policy. Entries whose tasklet vanished (job
// cancelled, already complete) are purged. Entries with no eligible provider
// stay queued. Event handlers never call this directly — they call
// scheduleLocked, which batches an event-burst into one pass run by
// schedLoop.
//
// Two implementations exist: the indexed batch pass (default) feeds the
// queue through the incremental scheduler index — each pick is a heap peek
// or an order-statistics query, zero allocations — while the legacy pass
// (Options.NoIndex, or a policy without an indexed form) rebuilds the
// candidate slice per pick. Both place the same provider sequence; the
// differential tests pin that equivalence.
func (b *Broker) schedulePassLocked() {
	b.mPendingDep.Set(int64(len(b.pending)))
	if len(b.pending) == 0 || len(b.providers) == 0 {
		return
	}
	start := time.Now()
	var placed int
	if b.index != nil {
		placed = b.schedulePassIndexedLocked()
	} else {
		placed = b.schedulePassLegacyLocked()
	}
	b.mSchedPassNS.Observe(float64(time.Since(start)))
	if placed > 0 {
		b.mPlaced.Add(int64(placed))
	}
	b.mPendingDep.Set(int64(len(b.pending)))
}

// schedulePassIndexedLocked is the batch placement pass over the
// incremental index. The index mirrors provider free/backlog state (event
// handlers keep it in sync), so each pick consults the maintained order
// directly; launchAttemptLocked's Assign hook re-ranks the chosen provider
// before the next pick.
func (b *Broker) schedulePassIndexedLocked() int {
	placed := 0
	remaining := b.pending[:0]
	for idx, tid := range b.pending {
		// Without free capacity nothing below can place; keep the rest of
		// the queue as-is instead of walking it (the queue can hold many
		// thousands of entries and schedule runs on every result).
		if b.index.FreeSlots() <= 0 {
			remaining = append(remaining, b.pending[idx:]...)
			break
		}
		ts := b.tasklets[tid]
		if ts == nil || ts.tracker.Done() {
			continue
		}
		b.exclScratch = ts.tracker.AppendActiveProviders(b.exclScratch[:0])
		pid, ok := b.index.Pick(&ts.t, b.exclScratch)
		if !ok {
			remaining = append(remaining, tid)
			continue
		}
		p := b.providers[pid]
		if p == nil || p.free <= 0 {
			remaining = append(remaining, tid)
			continue
		}
		b.launchAttemptLocked(ts, p)
		placed++
	}
	b.pending = remaining
	return placed
}

// schedulePassLegacyLocked is the full-scan placement pass: the candidate
// view is rebuilt for every pick because free/backlog change as attempts
// are assigned. Kept for the E10 ablation and for policies without an
// indexed form.
func (b *Broker) schedulePassLegacyLocked() int {
	totalFree := 0
	for _, p := range b.providers {
		if p.info.Slots > 0 {
			totalFree += p.free
		}
	}

	placed := 0
	remaining := b.pending[:0]
	for idx, tid := range b.pending {
		// Without free capacity nothing below can place; keep the rest of
		// the queue as-is instead of walking it (the queue can hold many
		// thousands of entries and schedule runs on every result).
		if totalFree <= 0 {
			remaining = append(remaining, b.pending[idx:]...)
			break
		}
		ts := b.tasklets[tid]
		if ts == nil || ts.tracker.Done() {
			continue
		}
		// Rebuild the candidate view each pick; free/backlog change as we
		// assign.
		cands := b.candScratch[:0]
		for _, p := range b.providers {
			if p.info.Slots == 0 {
				continue // not yet registered
			}
			cands = append(cands, scheduler.Candidate{
				Info: &p.info, FreeSlots: p.free, Backlog: p.backlog,
			})
		}
		b.candScratch = cands
		b.exclScratch = ts.tracker.AppendActiveProviders(b.exclScratch[:0])
		req := scheduler.Request{Tasklet: &ts.t, ExcludeIDs: b.exclScratch}
		pid, ok := b.opts.Policy.Pick(req, cands)
		if !ok {
			remaining = append(remaining, tid)
			continue
		}
		p := b.providers[pid]
		if p == nil || p.free <= 0 {
			remaining = append(remaining, tid)
			continue
		}
		b.launchAttemptLocked(ts, p)
		totalFree--
		placed++
	}
	b.pending = remaining
	return placed
}

// purgePendingLocked removes queue entries whose tasklet no longer exists.
func (b *Broker) purgePendingLocked() {
	live := b.pending[:0]
	for _, tid := range b.pending {
		if ts := b.tasklets[tid]; ts != nil && !ts.tracker.Done() {
			live = append(live, tid)
		}
	}
	b.pending = live
}

// launchAttemptLocked creates and dispatches one attempt.
func (b *Broker) launchAttemptLocked(ts *taskletState, p *providerState) {
	b.nextAttempt++
	aid := b.nextAttempt
	a := &attemptState{id: aid, tasklet: ts.t.ID, provider: p.info.ID}
	b.attempts[aid] = a
	p.free--
	p.backlog++
	p.assigned++
	b.updateReliabilityLocked(p)
	b.index.Assign(p.info.ID) // after the reliability update so rank refreshes
	ts.tracker.OnLaunched(aid, p.info.ID)

	msg := &wire.Assign{
		Attempt: aid,
		Tasklet: ts.t.ID,
		Program: ts.t.Program,
		Params:  ts.t.Params,
		Fuel:    ts.t.Fuel,
		Seed:    ts.t.Seed,
		// A provider that never advertised the flags tail can't decode it;
		// drop the flag rather than the peer — a legacy provider has no
		// result memo for NoCache to bypass anyway.
		NoCache: ts.t.QoC.NoCache && p.caps&wire.CapFlagsTail != 0,
	}
	if b.opts.DisableProgramCache {
		msg.ProgramData = b.programs[ts.t.Program]
	} else if !p.sent[ts.t.Program] {
		msg.ProgramData = b.programs[ts.t.Program]
		p.sent[ts.t.Program] = true
	}
	b.enqueue(p.out, msg, p.nc, &p.dropWarned, p.label)
	b.mLaunched.Inc()
}

// fleetInfo builds the provider-directory reply for QueryFleet.
func (b *Broker) fleetInfo() *wire.FleetInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	info := &wire.FleetInfo{Pending: len(b.pending)}
	for _, p := range b.providers {
		info.Providers = append(info.Providers, wire.ProviderEntry{
			ID:          p.info.ID,
			Class:       p.info.Class,
			Slots:       p.info.Slots,
			FreeSlots:   p.free,
			Speed:       p.info.Speed,
			Reliability: p.info.Reliability,
			Executed:    int64(p.finished),
		})
	}
	sort.Slice(info.Providers, func(i, j int) bool {
		return info.Providers[i].ID < info.Providers[j].ID
	})
	return info
}

// Snapshot is a point-in-time view of broker state for tests and the CLI.
type Snapshot struct {
	Providers []core.ProviderInfo
	Pending   int
	InFlight  int
	Jobs      int
}

// Snapshot returns current broker state.
func (b *Broker) Snapshot() Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Snapshot{Pending: len(b.pending), InFlight: len(b.attempts), Jobs: len(b.jobs)}
	for _, p := range b.providers {
		info := p.info
		info.LastHeartbeat = time.Unix(0, p.lastBeat.Load())
		s.Providers = append(s.Providers, info)
	}
	return s
}

var _ io.Closer = (*Broker)(nil)
