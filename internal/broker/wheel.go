package broker

import (
	"sync"
	"time"

	"repro/internal/core"
)

// This file implements the per-partition hashed timer wheel that replaces
// the broker's per-tasklet time.AfterFunc timers: one goroutine per
// partition serves every QoC deadline and every RetryBackoff re-issue delay
// in that partition, instead of one runtime timer (and, on expiry, one
// goroutine) per in-flight tasklet. Entries hash into a fixed ring of slots
// by expiry tick; the goroutine sleeps while the wheel is empty and
// otherwise advances once per tick, firing due entries through a callback
// that feeds the partition's ingress ring.

const (
	wheelSlots = 256
	wheelTick  = time.Millisecond
)

// wheel entry kinds.
const (
	wheelDeadline uint8 = iota + 1
	wheelLaunch
)

type wheelEntry struct {
	kind      uint8
	cancelled bool
	tid       core.TaskletID
	expireAt  time.Time
}

// timerWheel is safe for concurrent use; it carries its own mutex (a leaf
// lock — the fire callback runs with no wheel lock held).
type timerWheel struct {
	mu        sync.Mutex
	slots     [wheelSlots][]*wheelEntry
	count     int
	base      time.Time // tick origin
	lastTick  int64     // ticks since base already processed
	deadlines map[core.TaskletID]*wheelEntry

	wake chan struct{}
	fire func(kind uint8, tid core.TaskletID)
}

func newTimerWheel(fire func(kind uint8, tid core.TaskletID)) *timerWheel {
	return &timerWheel{
		base:      time.Now(),
		deadlines: map[core.TaskletID]*wheelEntry{},
		wake:      make(chan struct{}, 1),
		fire:      fire,
	}
}

// scheduleLocked inserts e at its expiry tick's slot. A tick at or before
// the wheel's current position lands on the next slot to be visited, so
// near-term entries fire on the next advance rather than after a full
// rotation.
func (w *timerWheel) scheduleLocked(e *wheelEntry) {
	tick := int64(e.expireAt.Sub(w.base) / wheelTick)
	if tick <= w.lastTick {
		tick = w.lastTick + 1
	}
	idx := tick % wheelSlots
	w.slots[idx] = append(w.slots[idx], e)
	w.count++
}

// armDeadline schedules (or re-schedules) the QoC deadline for tid.
func (w *timerWheel) armDeadline(tid core.TaskletID, d time.Duration) {
	w.mu.Lock()
	if old := w.deadlines[tid]; old != nil {
		old.cancelled = true
	}
	e := &wheelEntry{kind: wheelDeadline, tid: tid, expireAt: time.Now().Add(d)}
	w.deadlines[tid] = e
	w.scheduleLocked(e)
	w.mu.Unlock()
	w.kick()
}

// stopDeadline disarms tid's deadline if armed.
func (w *timerWheel) stopDeadline(tid core.TaskletID) {
	w.mu.Lock()
	if e := w.deadlines[tid]; e != nil {
		e.cancelled = true
		delete(w.deadlines, tid)
	}
	w.mu.Unlock()
}

// hasDeadline reports whether tid has an armed deadline (the shard exchange
// refuses to migrate deadline-bearing tasklets).
func (w *timerWheel) hasDeadline(tid core.TaskletID) bool {
	w.mu.Lock()
	_, ok := w.deadlines[tid]
	w.mu.Unlock()
	return ok
}

// armLaunch schedules a backoff-delayed re-issue for tid. Launch entries
// are not cancellable; the firing path re-checks liveness.
func (w *timerWheel) armLaunch(tid core.TaskletID, d time.Duration) {
	w.mu.Lock()
	w.scheduleLocked(&wheelEntry{kind: wheelLaunch, tid: tid, expireAt: time.Now().Add(d)})
	w.mu.Unlock()
	w.kick()
}

func (w *timerWheel) kick() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// advance walks the wheel from the last processed tick up to now, moving
// due entries into the caller's scratch. Entries seen early (a future
// rotation) stay put. When the wheel fell more than a full rotation behind,
// one sweep of every slot covers everything due.
func (w *timerWheel) advance(now time.Time, due []*wheelEntry) []*wheelEntry {
	w.mu.Lock()
	nowTick := int64(now.Sub(w.base) / wheelTick)
	steps := nowTick - w.lastTick
	if steps > wheelSlots {
		steps = wheelSlots
	}
	for s := int64(1); s <= steps; s++ {
		idx := (w.lastTick + s) % wheelSlots
		slot := w.slots[idx]
		keep := slot[:0]
		for _, e := range slot {
			switch {
			case e.cancelled:
				w.count--
			case !e.expireAt.After(now):
				if e.kind == wheelDeadline && w.deadlines[e.tid] == e {
					delete(w.deadlines, e.tid)
				}
				due = append(due, e)
				w.count--
			default:
				keep = append(keep, e)
			}
		}
		// Clear the tail so dropped entries don't linger in the backing
		// array.
		for i := len(keep); i < len(slot); i++ {
			slot[i] = nil
		}
		w.slots[idx] = keep
	}
	w.lastTick = nowTick
	w.mu.Unlock()
	return due
}

// run is the partition's timer goroutine: asleep while the wheel is empty,
// ticking while armed. Fire callbacks run without the wheel lock.
func (w *timerWheel) run(stop <-chan struct{}) {
	timer := time.NewTimer(wheelTick)
	if !timer.Stop() {
		<-timer.C
	}
	var due []*wheelEntry
	for {
		w.mu.Lock()
		n := w.count
		w.mu.Unlock()
		if n == 0 {
			select {
			case <-w.wake:
			case <-stop:
				return
			}
		}
		timer.Reset(wheelTick)
		select {
		case <-timer.C:
		case <-stop:
			timer.Stop()
			return
		}
		due = w.advance(time.Now(), due[:0])
		for _, e := range due {
			w.fire(e.kind, e.tid)
		}
	}
}
