package broker

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// This file implements the partitioned broker core. Per-tasklet state is
// split into P lock-striped partitions keyed by tasklet-ID hash: each
// partition owns a lifecycle.Engine, its own mutex, its slice of the
// placement queue, and a timer wheel (wheel.go) for deadlines and backoff
// re-issues. Reader goroutines route decoded results into partitions
// through MPSC ingress rings (ingress.go) and the first arrival elects
// itself combiner, bulk-applying the backlog through Engine.Apply. The
// scheduler goroutine keeps exclusive ownership of scheduler.Index and
// drains partition queues round-robin under b.mu, so placement stays
// single-writer while lifecycle execution, QoC fan-in, memo lookups and
// effect emission run on all cores.
//
// Lock order (outer → inner): b.mu → part.mu → {wheel.mu, dirtyMu}.
// jobMu, exMu, progMu and pmu are taken with no partition lock held; a
// partition-lock holder never takes any of them — effects that need them
// (CancelAttempt, Deliver) are copied out under part.mu and applied after
// release. exMu → part.mu is allowed (migrate-request scan); the reverse
// never happens.

// partition is one lock stripe of the broker's per-tasklet state.
type partition struct {
	idx int

	mu sync.Mutex
	// life is this partition's slice of the shared lifecycle semantics: it
	// owns the tasklet/attempt records whose IDs hash here. Attempt IDs are
	// striped (offset idx, stride P) so they stay globally unique.
	life *lifecycle.Engine
	// pending is this partition's slice of the placement queue, FIFO.
	pending []core.TaskletID

	wheel *timerWheel
	ring  *ingressRing

	// draining is the combiner election flag: the goroutine that CASes it
	// true owns ring consumption and the combiner scratch below until it
	// stores false again.
	draining atomic.Bool
	inScratch []partEvent
	evScratch []lifecycle.Event
	outScratch []lifecycle.Effect

	// Striped metric cells (satellite: hot attempts.*/tasklets.* counters
	// stop false-sharing one cache line across partitions).
	cOK, cFlt, cOth        *metrics.CounterCell
	cCompleted, cFailed    *metrics.CounterCell
	cDeadlineExp           *metrics.CounterCell
	hExec, hLatency        *metrics.Histogram
}

// mix64 is the splitmix64 finalizer; it spreads sequential tasklet IDs
// uniformly across partitions.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// part returns the partition owning tid.
func (b *Broker) part(tid core.TaskletID) *partition {
	if len(b.parts) == 1 {
		return b.parts[0]
	}
	return b.parts[mix64(uint64(tid))%uint64(len(b.parts))]
}

// pump elects the caller combiner for part and drains its ingress ring to
// empty. Callers must hold no locks. If another goroutine already holds the
// flag it will see our events; the handoff re-check below closes the race
// where it gave up between our push and our CAS.
func (b *Broker) pump(part *partition) {
	for {
		if !part.draining.CompareAndSwap(false, true) {
			return
		}
		for {
			n := 0
			if part.inScratch == nil {
				part.inScratch = make([]partEvent, ingressRingSize)
			}
			for n < len(part.inScratch) && part.ring.pop(&part.inScratch[n]) {
				n++
			}
			if n == 0 {
				break
			}
			b.processBatch(part, part.inScratch[:n])
		}
		part.draining.Store(false)
		if !part.ring.hasData() {
			return
		}
	}
}

// processBatch applies one drained burst to the partition: runs of results
// become one bulk Engine.Apply, wheel firings are applied in arrival order.
// Out-of-partition effects are copied and applied after part.mu is
// released; the scheduler is woken once for the burst.
func (b *Broker) processBatch(part *partition, evs []partEvent) {
	out := part.outScratch[:0]
	wake := false

	part.mu.Lock()
	i := 0
	for i < len(evs) {
		switch evs[i].kind {
		case peResult:
			j := i
			lev := part.evScratch[:0]
			for j < len(evs) && evs[j].kind == peResult {
				lev = append(lev, lifecycle.Event{Kind: lifecycle.EventResult, Result: evs[j].res})
				j++
			}
			fx := part.life.Apply(lev)
			for k := range lev {
				disp := lev[k].Disp
				if disp == lifecycle.ResultStale {
					continue // unknown attempt or wrong provider; no slot was consumed
				}
				pr := evs[i+k].prov
				pr.free.Add(1)
				pr.backlog.Add(-1)
				pr.finished.Add(1)
				b.markProviderDirty(pr)
				wake = true
				if disp != lifecycle.ResultConsumed {
					continue
				}
				r := &evs[i+k].res
				switch r.Status {
				case core.StatusOK:
					part.cOK.Inc()
				case core.StatusFault:
					part.cFlt.Inc()
				default:
					part.cOth.Inc()
				}
				part.hExec.Observe(float64(r.Exec) / 1e6)
			}
			var launched bool
			out, launched = b.applyPartFxLocked(part, fx, out)
			wake = wake || launched
			part.evScratch = lev[:0]
			i = j
		case peDeadline:
			expired, fx := part.life.Deadline(evs[i].tid)
			if expired {
				part.cDeadlineExp.Inc()
				out, _ = b.applyPartFxLocked(part, fx, out)
				// A deadlined leader's dissolved flight re-queues its
				// waiters.
				wake = true
			}
			i++
		case peLaunchReady:
			// Backoff re-issue became eligible: queue only if the tasklet
			// is still live.
			if !b.closed.Load() && part.life.Live(evs[i].tid) {
				b.appendPendingLocked(part, evs[i].tid)
				wake = true
			}
			i++
		default:
			i++
		}
	}
	part.mu.Unlock()

	b.applyOutFx(out)
	part.outScratch = out[:0]
	if wake {
		b.schedule()
	}
}

// appendPendingLocked queues tid for placement. Callers hold part.mu.
func (b *Broker) appendPendingLocked(part *partition, tid core.TaskletID) {
	part.pending = append(part.pending, tid)
	b.pendingN.Add(1)
}

// applyPartFxLocked executes the partition-local half of an effect slice —
// pending-queue appends and timer-wheel arming — and copies the effects
// that need broker-wide state (CancelAttempt, Deliver) into out for
// applyOutFx. Callers hold part.mu; launched reports whether placement work
// was queued.
func (b *Broker) applyPartFxLocked(part *partition, fx []lifecycle.Effect, out []lifecycle.Effect) ([]lifecycle.Effect, bool) {
	launched := false
	for i := range fx {
		ef := &fx[i]
		switch ef.Kind {
		case lifecycle.EffectLaunch:
			if ef.Delay > 0 {
				// Backoff re-issue: the partition wheel re-queues it after
				// the delay (no per-retry AfterFunc goroutine).
				part.wheel.armLaunch(ef.Tasklet, ef.Delay)
			} else {
				b.appendPendingLocked(part, ef.Tasklet)
				launched = true
			}
		case lifecycle.EffectSetDeadline:
			part.wheel.armDeadline(ef.Tasklet, ef.Delay)
		case lifecycle.EffectCancelAttempt:
			out = append(out, *ef)
		case lifecycle.EffectDeliver:
			// The tasklet is finalized; disarm its deadline while we still
			// hold its partition.
			part.wheel.stopDeadline(ef.Tasklet)
			out = append(out, *ef)
		case lifecycle.EffectMemoStore, lifecycle.EffectCoalesced:
			// Informational; the memo package maintains its own counters.
		}
	}
	return out, launched
}

// applyOutFx executes effects copied out of a partition: attempt cancels
// (provider lookup under pmu) and final delivery. Callers must hold no
// locks.
func (b *Broker) applyOutFx(out []lifecycle.Effect) {
	for i := range out {
		ef := &out[i]
		switch ef.Kind {
		case lifecycle.EffectCancelAttempt:
			b.pmu.RLock()
			if p := b.providers[ef.Provider]; p != nil {
				b.enqueue(p.out, &wire.CancelAttempt{Attempt: ef.Attempt}, p.nc, &p.dropWarned, p.label)
			}
			b.pmu.RUnlock()
		case lifecycle.EffectDeliver:
			b.deliver(ef)
		}
	}
}

// feedPartition applies a batch of lifecycle events (submissions, adopted
// migrations) to one partition and fully executes the effects. Callers must
// hold no locks and call b.schedule() afterwards.
func (b *Broker) feedPartition(part *partition, evs []lifecycle.Event) {
	if len(evs) == 0 {
		return
	}
	part.mu.Lock()
	fx := part.life.Apply(evs)
	out, _ := b.applyPartFxLocked(part, fx, nil)
	part.mu.Unlock()
	b.applyOutFx(out)
}

// cancelOne cancels tid in its partition, reporting whether a live tasklet
// was dropped. Promoted-waiter launches and attempt cancels are fully
// applied. Callers must hold no locks and call b.schedule() afterwards.
func (b *Broker) cancelOne(tid core.TaskletID) bool {
	part := b.part(tid)
	part.mu.Lock()
	dropped, fx := part.life.Cancel(tid)
	var out []lifecycle.Effect
	if dropped {
		part.wheel.stopDeadline(tid)
		out, _ = b.applyPartFxLocked(part, fx, nil)
	}
	part.mu.Unlock()
	b.applyOutFx(out)
	return dropped
}

// purgePartitionLocked removes queue entries whose tasklet no longer
// exists. Callers hold part.mu.
func (b *Broker) purgePartitionLocked(part *partition) {
	live := part.pending[:0]
	for _, tid := range part.pending {
		if part.life.Live(tid) {
			live = append(live, tid)
		}
	}
	b.pendingN.Add(int64(len(live) - len(part.pending)))
	part.pending = live
}

// purgePending purges every partition's queue.
func (b *Broker) purgePending() {
	for _, part := range b.parts {
		part.mu.Lock()
		b.purgePartitionLocked(part)
		part.mu.Unlock()
	}
}

// markProviderDirty queues p for an index resync at the next pass start.
// The CAS collapses a burst of results into one dirty-list entry.
func (b *Broker) markProviderDirty(p *providerState) {
	if p.dirty.CompareAndSwap(false, true) {
		b.dirtyMu.Lock()
		b.dirtyProv = append(b.dirtyProv, p)
		b.dirtyMu.Unlock()
	}
}

// syncDirtyProvidersLocked folds partition-side slot settlements into the
// scheduler's view: reliability refresh plus one absolute index Upsert per
// dirty provider. Runs at the start of every placement pass under b.mu —
// the index has a single writer, the scheduler.
func (b *Broker) syncDirtyProvidersLocked() {
	b.dirtyMu.Lock()
	dirty := b.dirtyProv
	b.dirtyProv = b.dirtySpare[:0]
	b.dirtySpare = dirty
	b.dirtyMu.Unlock()
	for _, p := range dirty {
		p.dirty.Store(false)
		if p.gone.Load() {
			continue
		}
		b.updateReliabilityLocked(p)
		b.index.Upsert(&p.info, int(p.free.Load()), int(p.backlog.Load()))
	}
}

// deliver pushes a final result to the consumer and updates job accounting.
// Callers must hold no locks; the tasklet's deadline is already disarmed
// (applyPartFxLocked does it under the partition lock).
func (b *Broker) deliver(ef *lifecycle.Effect) {
	b.finalizedN.Add(1)
	if b.opts.ShardID != 0 {
		b.exMu.Lock()
		if rec, ok := b.adopted[ef.Tasklet]; ok {
			// An adopted tasklet's final goes home as a MigrateResult: the
			// origin shard owns the consumer connection and the job
			// accounting.
			delete(b.adopted, ef.Tasklet)
			b.returnAdoptedExLocked(rec, ef)
			b.exMu.Unlock()
			return
		}
		b.exMu.Unlock()
	}
	final := ef.Final
	part := b.part(ef.Tasklet)

	b.jobMu.Lock()
	defer b.jobMu.Unlock()
	job := b.jobs[final.Job]
	if job == nil {
		return
	}
	if final.OK() {
		job.completed++
		part.cCompleted.Inc()
	} else {
		job.failed++
		part.cFailed.Inc()
	}
	part.hLatency.ObserveDuration(time.Since(ef.Submitted))

	c := b.consumers[job.consumer]
	if c == nil || c.gone {
		return
	}
	c.pending--
	b.enqueue(c.out, &wire.ResultPush{
		Job:       final.Job,
		Tasklet:   final.Tasklet,
		Index:     final.Index,
		Status:    final.Status,
		Return:    final.Return,
		Emitted:   final.Emitted,
		FaultCode: final.FaultCode,
		FaultMsg:  final.FaultMsg,
		Provider:  final.Provider,
		Attempts:  ef.Attempts,
		ExecNanos: int64(final.Exec),
	}, c.nc, &c.dropWarned, c.label)
	if job.completed+job.failed == job.total {
		b.enqueue(c.out, &wire.JobDone{Job: job.id, Completed: job.completed, Failed: job.failed}, c.nc, &c.dropWarned, c.label)
		delete(b.jobs, job.id)
		delete(c.jobs, job.id)
		b.logf("broker: job %d done: %d completed, %d failed", job.id, job.completed, job.failed)
	}
}
