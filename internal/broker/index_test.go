package broker

import (
	"fmt"
	"testing"

	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/scheduler"
)

// TestBrokerIndexDifferential runs the same job through a live stack with
// the incremental placement index on and off and asserts the outcomes are
// identical: every result status and value. Memoization is disabled so every
// tasklet really goes through placement. Live timing interleaves passes and
// result arrivals differently run to run (a redundant replica may or may not
// launch before the first result finalizes its tracker), so attempt counts
// are only sanity-bounded, not compared exactly; the pick-sequence identity
// itself is pinned by the deterministic scheduler and sim differential tests.
func TestBrokerIndexDifferential(t *testing.T) {
	run := func(noIndex bool) (results []consumer.TaskResult, launched int64) {
		t.Helper()
		reg := &metrics.Registry{}
		addr := testStack(t,
			Options{
				Policy:      scheduler.NewFastestFree(),
				NoIndex:     noIndex,
				Metrics:     reg,
				MemoEntries: -1, MemoBytes: -1, MemoTTL: -1,
			},
			4,
			func(i int) provider.Options {
				return provider.Options{
					Slots: 1 + i%2, Speed: float64(50 * (i + 1)),
					Name: fmt.Sprintf("p%d", i),
				}
			})
		c, err := consumer.Connect(addr, "diff")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		rows := make([][]int64, 48)
		for i := range rows {
			rows[i] = []int64{int64(i)}
		}
		spec := compileJob(t, squareSrc, rows...)
		spec.QoC = core.QoC{Mode: core.QoCRedundant, Replicas: 2}
		job, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Collect(ctxT(t))
		if err != nil {
			t.Fatal(err)
		}
		return res, reg.Counter("attempts.launched").Value()
	}

	indexed, indexedLaunched := run(false)
	legacy, legacyLaunched := run(true)

	// Every tasklet needs at least one real launch in both configurations.
	if n := int64(len(indexed)); indexedLaunched < n || legacyLaunched < n {
		t.Errorf("attempts launched: indexed %d, legacy %d, want >= %d each",
			indexedLaunched, legacyLaunched, n)
	}

	if len(indexed) != len(legacy) {
		t.Fatalf("result counts differ: indexed %d, legacy %d", len(indexed), len(legacy))
	}
	for i := range indexed {
		a, b := indexed[i], legacy[i]
		if a.Status != b.Status || a.Return.I != b.Return.I {
			t.Errorf("result %d: indexed %+v, legacy %+v", i, a, b)
		}
		if !a.OK() || a.Return.I != int64(i*i) {
			t.Errorf("result %d wrong: %+v", i, a)
		}
	}
}

// TestBrokerPlacementMetrics checks the observability satellites: a
// placement burst must populate the sched-pass histogram, the placed
// counter, and leave the pending-depth gauge at zero once drained.
func TestBrokerPlacementMetrics(t *testing.T) {
	opts := Options{MemoEntries: -1, MemoBytes: -1, MemoTTL: -1}
	b := New(opts)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	p, err := provider.Connect(provider.Options{BrokerAddr: addr, Slots: 2, Speed: 100, Name: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	c, err := consumer.Connect(addr, "metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows := make([][]int64, 16)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	job, err := c.Submit(compileJob(t, squareSrc, rows...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Collect(ctxT(t)); err != nil {
		t.Fatal(err)
	}

	reg := b.Metrics()
	if n := reg.Histogram("broker.sched_pass_ns").Count(); n == 0 {
		t.Error("broker.sched_pass_ns recorded no passes")
	}
	if placed := reg.Counter("broker.placed_per_pass").Value(); placed < int64(len(rows)) {
		t.Errorf("broker.placed_per_pass = %d, want >= %d", placed, len(rows))
	}
	if depth := reg.Gauge("broker.pending_depth").Value(); depth != 0 {
		t.Errorf("broker.pending_depth = %d after drain, want 0", depth)
	}
}
