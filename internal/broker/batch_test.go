package broker

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/shard"
	"repro/internal/tvm"
)

// runJobWithBatching runs one deterministic job through a fresh stack with
// batch frames enabled or disabled on the broker and every provider. It
// returns the collected results plus how many AssignBatch frames the
// providers decoded, so callers can prove batches actually flowed (or
// didn't).
func runJobWithBatching(t *testing.T, noBatch bool) ([]consumer.TaskResult, int64) {
	t.Helper()
	regs := make([]*metrics.Registry, 3)
	addr := testStack(t, Options{NoBatch: noBatch}, 3, func(i int) provider.Options {
		regs[i] = &metrics.Registry{}
		return provider.Options{Slots: 2, Speed: 100, NoBatch: noBatch, Metrics: regs[i]}
	})
	c, err := consumer.Connect(addr, "diff")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 96
	job, err := c.Submit(compileJob(t, squareSrc, intRows(n)...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	var batches int64
	for _, reg := range regs {
		batches += reg.Counter("provider.batches.received").Value()
	}
	return res, batches
}

// TestDifferentialBatchingBitIdentical proves batching changes frame
// boundaries only: the same job produces bit-identical results (status,
// return values, emits, faults) with batch frames on and off — and the
// batched run really did use batch frames while the disabled run used none.
func TestDifferentialBatchingBitIdentical(t *testing.T) {
	resOn, batchesOn := runJobWithBatching(t, false)
	resOff, batchesOff := runJobWithBatching(t, true)
	if on, off := essences(resOn), essences(resOff); !reflect.DeepEqual(on, off) {
		t.Fatalf("results diverge with batching on vs off:\non:  %+v\noff: %+v", on, off)
	}
	// One Submit queues 96 tasklets before the first placement pass runs, so
	// the pass must group ≥2 assignments per provider into AssignBatches.
	if batchesOn == 0 {
		t.Fatal("batching enabled but providers decoded no AssignBatch frames")
	}
	if batchesOff != 0 {
		t.Fatalf("batching disabled but providers decoded %d AssignBatch frames", batchesOff)
	}
	for i, r := range resOn {
		if r.Status != core.StatusOK || !r.Return.Equal(tvm.Int(int64(i)*int64(i))) {
			t.Fatalf("result[%d] = %+v, want OK %d", i, r, i*i)
		}
	}
}

// runShardedWithBatching runs a skewed workload through a peered shard pair
// with the work exchange active, batch frames on or off.
func runShardedWithBatching(t *testing.T, noBatch bool) []consumer.TaskResult {
	t.Helper()
	_, addrs := shardGroup(t, 2, Options{
		NoBatch:        noBatch,
		Exchange:       true,
		GossipInterval: 5 * time.Millisecond,
		ExchangePolicy: shard.Policy{MinGap: 1},
	})
	addProvider(t, addrs[0], provider.Options{Slots: 1, Speed: 100, Throttle: 0.05, NoBatch: noBatch, Name: "slow"})
	addProvider(t, addrs[1], provider.Options{Slots: 4, Speed: 100, NoBatch: noBatch, Name: "fast"})

	c, err := consumer.Connect(addrs[0], "sharded-diff")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 48
	job, err := c.Submit(compileJob(t, slowSrc, intRows(n)...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDifferentialBatchingSharded repeats the differential on a 2-shard
// group with work exchange migrating tasklets between shards: adoption,
// migrated results and re-delivery must all be batching-agnostic.
func TestDifferentialBatchingSharded(t *testing.T) {
	on := essences(runShardedWithBatching(t, false))
	off := essences(runShardedWithBatching(t, true))
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("sharded results diverge with batching on vs off:\non:  %+v\noff: %+v", on, off)
	}
	for i, r := range on {
		if r.Status != core.StatusOK || r.Return != tvm.Int(int64(i)*int64(i)).String() {
			t.Fatalf("result[%d] = %+v, want OK %d", i, r, i*i)
		}
	}
}

// TestBatchBrokerLegacyProviderInterop pairs a batch-capable broker with a
// provider that never advertised CapBatch (standing in for a pre-batch
// binary): the broker must fall back to single Assign frames for that peer
// and the job must complete normally. The converse pairing — legacy broker,
// batch-capable provider — must also hold.
func TestBatchBrokerLegacyProviderInterop(t *testing.T) {
	cases := []struct {
		name                       string
		brokerNoBatch, provNoBatch bool
	}{
		{"legacy-provider", false, true},
		{"legacy-broker", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := &metrics.Registry{}
			addr := testStack(t, Options{NoBatch: tc.brokerNoBatch}, 1, func(int) provider.Options {
				return provider.Options{Slots: 2, Speed: 100, NoBatch: tc.provNoBatch, Metrics: reg}
			})
			c, err := consumer.Connect(addr, "interop")
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const n = 24
			job, err := c.Submit(compileJob(t, squareSrc, intRows(n)...))
			if err != nil {
				t.Fatal(err)
			}
			res, err := job.Collect(ctxT(t))
			if err != nil {
				t.Fatal(err)
			}
			checkSquares(t, res, n)
			if got := reg.Counter("provider.batches.received").Value(); got != 0 {
				t.Fatalf("legacy pairing still shipped %d AssignBatch frames", got)
			}
		})
	}
}
