// Broker sharding: peer links, load gossip, and the pull-based work
// exchange.
//
// A shard group runs N brokers, each a complete broker (its own providers,
// consumers, lifecycle partitions, memo tier). Clients route each job to a
// shard by consistent hash of its program hash (shard.Ring), so memo and
// flight tables shard naturally: identical tasklets land on the same
// broker. Peers connect with wire.RolePeer and exchange two things:
//
//   - ShardGossip every GossipInterval: queue depth, free slots, and an
//     EWMA of the finalization rate. Gossip doubles as the peer-link
//     heartbeat and, on inbound links, as the dialer's introduction.
//   - A pull-based exchange: an underloaded shard (free slots, short
//     queue) sends MigrateRequest to the most-loaded peer, bounded by the
//     shard.Policy hysteresis and per-interval cap. The source answers
//     with queued — never in-flight — tasklets, cancelling each locally
//     before it travels (Cancel-before-launch), so exactly one shard owns
//     a tasklet at any instant. The destination re-Submits through its own
//     lifecycle engine (fresh QoC fan-out, its own memo key space) and
//     routes the final back as a MigrateResult; the origin still owns the
//     consumer connection and the job accounting.
//
// Failure rules keep migration loss-free: a rejected MigrateTasklet or a
// dead peer makes the origin re-Submit from its migrated record, and a
// destination losing the origin link cancels the orphaned adoptions (the
// origin re-runs them). A migration can delay a tasklet, never lose it.
// Tasklets with an armed deadline never migrate: the origin's timer stays
// authoritative.
//
// All exchange state (peers, links, migrated, adopted, the gossip EWMA)
// lives under b.exMu. exMu may nest partition locks (the migrate-request
// scan) and progMu, but never b.mu or jobMu: re-homing collects work under
// exMu and applies it through jobMu/partitions after release.
package broker

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/memo"
	"repro/internal/shard"
	"repro/internal/wire"
)

// peerState is one peer broker link (either direction). Guarded by b.exMu.
type peerState struct {
	id    uint64 // remote ShardID; 0 on an inbound link until its first gossip
	out   chan wire.Message
	nc    net.Conn
	label string
	gone  bool

	load    shard.Load
	loadOK  bool
	lastSeq uint64

	dropWarned atomic.Bool
}

// migratedRec remembers a tasklet handed to a peer: the full tasklet for a
// local re-Submit on rejection or peer loss, the peer it went to, and the
// exact link its MigrateTasklet frame was queued on. With mutual dial two
// links per pair exist, so re-homing keys off the link, not the shard ID:
// a frame queued on a dying link is lost even when a sibling link survives.
type migratedRec struct {
	t    core.Tasklet
	peer uint64
	link *peerState
}

// adoptedRec maps a locally re-submitted tasklet back to its origin.
type adoptedRec struct {
	origin core.TaskletID
	peer   uint64
}

// ConnectPeer dials another shard's broker and registers the link. The
// remote names itself in the Welcome; we introduce ourselves with our
// first gossip. Both directions of a pair may dial each other — the extra
// link is harmless (gossip flows on both, pulls use the bound one).
func (b *Broker) ConnectPeer(addr string) error {
	if b.opts.ShardID == 0 {
		return errors.New("broker: ConnectPeer requires Options.ShardID")
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("broker: dial peer %s: %w", addr, err)
	}
	conn := wire.NewConn(nc)
	conn.NoCoalesce = b.opts.NoCoalesce
	conn.ReadTimeout = 30 * time.Second
	hello := &wire.Hello{Version: wire.ProtocolVersion, Role: wire.RolePeer,
		Name: fmt.Sprintf("shard-%d", b.opts.ShardID), Caps: wire.CapFlagsTail}
	if err := conn.Send(hello); err != nil {
		nc.Close()
		return fmt.Errorf("broker: peer handshake %s: %w", addr, err)
	}
	msg, err := conn.Recv()
	if err != nil {
		nc.Close()
		return fmt.Errorf("broker: peer handshake %s: %w", addr, err)
	}
	w, ok := msg.(*wire.Welcome)
	if !ok {
		nc.Close()
		if e, isErr := msg.(*wire.ErrorMsg); isErr {
			return fmt.Errorf("broker: peer %s refused: %s", addr, e.Msg)
		}
		return fmt.Errorf("broker: peer %s sent %s, want welcome", addr, msg.Type())
	}

	ps := &peerState{
		id:    w.ID,
		out:   make(chan wire.Message, sendQueueDepth),
		nc:    nc,
		label: fmt.Sprintf("peer shard %d", w.ID),
	}
	b.exMu.Lock()
	if b.closed.Load() {
		b.exMu.Unlock()
		nc.Close()
		return errors.New("broker: closed")
	}
	b.links[ps] = true
	b.bindPeerExLocked(ps, w.ID)
	b.exMu.Unlock()

	b.wg.Add(2)
	go func() {
		defer b.wg.Done()
		b.writerLoop(conn, ps.out, nc, nil)
	}()
	go func() {
		defer b.wg.Done()
		defer nc.Close()
		b.runPeerLoop(conn, ps)
		close(ps.out)
	}()

	// Introduce ourselves immediately so the remote can bind the link
	// before its next gossip tick. The gone check makes the enqueue safe
	// against the reader goroutine racing to teardown (close(ps.out)
	// happens only after removePeer marked the link gone under exMu).
	free := b.freeSlotsSample()
	b.exMu.Lock()
	if !ps.gone {
		b.enqueue(ps.out, b.gossipMsgExLocked(free), nc, &ps.dropWarned, ps.label)
	}
	b.exMu.Unlock()
	b.logf("broker: shard %d peered with shard %d at %s", b.opts.ShardID, w.ID, addr)
	return nil
}

// servePeer handles an inbound peer connection (post-handshake).
func (b *Broker) servePeer(nc net.Conn, conn *wire.Conn, hello *wire.Hello) {
	if b.opts.ShardID == 0 {
		_ = conn.Send(&wire.ErrorMsg{Code: wire.ErrCodeProtocol, Msg: "broker is not sharded"})
		return
	}
	ps := &peerState{
		out:   make(chan wire.Message, sendQueueDepth),
		nc:    nc,
		label: "peer (unbound)",
	}
	b.exMu.Lock()
	if b.closed.Load() {
		b.exMu.Unlock()
		return
	}
	b.links[ps] = true
	b.exMu.Unlock()

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.writerLoop(conn, ps.out, nc, nil)
	}()
	b.enqueue(ps.out, &wire.Welcome{ID: b.opts.ShardID}, nc, &ps.dropWarned, ps.label)
	b.logf("broker: shard %d accepted peer from %s (%s)", b.opts.ShardID, conn.RemoteAddr(), hello.Name)

	b.runPeerLoop(conn, ps)
	close(ps.out)
}

// runPeerLoop is the read loop shared by both link directions. On exit the
// link is torn down and its outstanding migrations are re-homed.
func (b *Broker) runPeerLoop(conn *wire.Conn, ps *peerState) {
	// Gossip is the heartbeat; allow a generous number of missed ticks
	// before declaring the link dead.
	conn.ReadTimeout = 10 * b.opts.GossipInterval
	if conn.ReadTimeout < 2*b.opts.HeartbeatTimeout {
		conn.ReadTimeout = 2 * b.opts.HeartbeatTimeout
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		switch m := msg.(type) {
		case *wire.ShardGossip:
			b.onGossip(ps, m)
		case *wire.MigrateRequest:
			b.onMigrateRequest(ps, m)
		case *wire.MigrateTasklet:
			b.onMigrateTasklet(ps, m)
		case *wire.MigrateAck:
			b.onMigrateAck(ps, m)
		case *wire.MigrateResult:
			b.onMigrateResult(m)
		case *wire.Bye:
			goto done
		default:
			b.logf("broker: %s sent unexpected %s", ps.label, msg.Type())
			goto done
		}
	}
done:
	b.removePeer(ps)
	b.logf("broker: %s disconnected", ps.label)
}

// bindPeerExLocked names a link with the remote's shard ID. The first bound
// link for an ID receives pulls; a duplicate link (mutual dial) only takes
// over once the first is gone. Callers hold exMu.
func (b *Broker) bindPeerExLocked(ps *peerState, id uint64) {
	if id == 0 || ps.id == id {
		return
	}
	ps.id = id
	ps.label = fmt.Sprintf("peer shard %d", id)
	if cur := b.peers[id]; cur == nil || cur.gone {
		b.peers[id] = ps
	}
}

// removePeer tears a link down. Tasklets whose MigrateTasklet frames
// travelled on this link are re-submitted locally no matter what: with
// mutual dial a sibling link to the same shard may survive, but frames
// queued on the dead link are gone with it. Re-homing is safe even when
// the peer did adopt the tasklet — deleting the record here dedups its
// late MigrateResult, so the worst case is wasted duplicate execution.
// Adopted tasklets are only cancelled once the last link to their origin
// is gone (the origin re-runs them when its own sending link died).
// Idempotent; callers hold no locks.
func (b *Broker) removePeer(ps *peerState) {
	b.exMu.Lock()
	if ps.gone {
		b.exMu.Unlock()
		return
	}
	ps.gone = true
	delete(b.links, ps)
	if ps.id != 0 && b.peers[ps.id] == ps {
		delete(b.peers, ps.id)
	}
	var back []migratedRec
	for tid, rec := range b.migrated {
		if rec.link == ps {
			delete(b.migrated, tid)
			back = append(back, rec)
		}
	}
	var orphans []core.TaskletID
	if ps.id != 0 {
		// Promote a surviving sibling link (mutual dial) so pulls and
		// MigrateResults keep flowing without waiting for its next gossip.
		var sibling *peerState
		for l := range b.links {
			if l.id == ps.id && !l.gone {
				sibling = l
				break
			}
		}
		if sibling != nil {
			if b.peers[ps.id] == nil {
				b.peers[ps.id] = sibling
			}
		} else {
			for tid, rec := range b.adopted {
				if rec.peer != ps.id {
					continue
				}
				delete(b.adopted, tid)
				orphans = append(orphans, tid)
			}
		}
	}
	b.exMu.Unlock()

	// A dead link can strand a whole exchange burst; re-home it through the
	// partitions in per-partition bulk Submits instead of one engine call
	// per tasklet.
	if len(back) > 0 {
		b.resubmitMigrated(back)
	}
	dropped := 0
	for _, tid := range orphans {
		if b.cancelOne(tid) {
			dropped++
		}
	}
	if len(back) > 0 || dropped > 0 {
		b.logf("broker: shard %d link to shard %d lost: re-homed %d migrated, dropped %d adopted",
			b.opts.ShardID, ps.id, len(back), dropped)
		b.purgePending()
	}
	b.schedule()
}

// resubmitMigrated re-runs tasklets whose migration failed (rejection or
// link death). The job accounting never noticed the detour: each tasklet
// gets a fresh ID under the same job slot. Callers hold no locks.
func (b *Broker) resubmitMigrated(back []migratedRec) {
	groups := make([][]lifecycle.Event, len(b.parts))
	b.jobMu.Lock()
	for _, rec := range back {
		job := b.jobs[rec.t.Job]
		if job == nil || job.cancelled {
			// Job cancellation deletes its migrated records, so a live record
			// pointing at a dead job means accounting went wrong somewhere —
			// say so instead of losing the tasklet silently.
			if job == nil {
				b.logf("broker: dropping re-homed tasklet %d: job %d unknown", rec.t.ID, rec.t.Job)
			}
			continue
		}
		t := rec.t
		t.ID = core.TaskletID(b.nextTasklet.Add(1))
		job.tasklets = append(job.tasklets, t.ID)
		ev := lifecycle.Event{Kind: lifecycle.EventSubmit, Tasklet: t}
		if b.memoOn {
			ev.Key, ev.HaveKey = memo.KeyFor(uint64(t.Program), t.Seed, t.Params)
		}
		pi := b.part(t.ID).idx
		groups[pi] = append(groups[pi], ev)
	}
	b.jobMu.Unlock()
	for pi, evs := range groups {
		b.feedPartition(b.parts[pi], evs)
	}
	b.schedule()
}

// ---------- gossip & pull planning ----------

// gossipLoop emits load gossip on every peer link each interval and plans
// at most one exchange pull per tick.
func (b *Broker) gossipLoop() {
	tick := time.NewTicker(b.opts.GossipInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-b.stop:
			return
		}
		b.gossipTick()
	}
}

// freeSlotsSample reads the fleet's free-slot total for gossip. Takes b.mu
// (the index belongs to the scheduler); callers must not hold exMu — the
// sample is taken before the gossip section to keep b.mu and exMu disjoint.
func (b *Broker) freeSlotsSample() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.index != nil {
		return b.index.FreeSlots()
	}
	free := 0
	for _, p := range b.providers {
		if p.info.Slots > 0 {
			if f := int(p.free.Load()); f > 0 {
				free += f
			}
		}
	}
	return free
}

// gossipMsgExLocked builds a ShardGossip frame from the given free-slot
// sample, refreshing the finalization-rate EWMA as a side effect. Callers
// hold exMu.
func (b *Broker) gossipMsgExLocked(free int) *wire.ShardGossip {
	queue := int(b.pendingN.Load())
	fin := b.finalizedN.Load()
	sample := float64(fin-b.lastFinal) / b.opts.GossipInterval.Seconds()
	b.lastFinal = fin
	if !b.exchRateOK {
		b.exchRate, b.exchRateOK = sample, true
	} else {
		b.exchRate = shard.EWMA(b.exchRate, sample)
	}
	b.mShardQueue.Set(int64(queue))
	b.gossipSeq++
	return &wire.ShardGossip{
		Shard: b.opts.ShardID, Seq: b.gossipSeq,
		QueueDepth: queue, FreeSlots: free, Rate: b.exchRate,
	}
}

func (b *Broker) gossipTick() {
	free := b.freeSlotsSample()
	b.exMu.Lock()
	if b.closed.Load() {
		b.exMu.Unlock()
		return
	}
	g := b.gossipMsgExLocked(free)
	for ps := range b.links {
		b.enqueue(ps.out, g, ps.nc, &ps.dropWarned, ps.label)
	}

	if b.opts.Exchange {
		self := shard.Load{Shard: g.Shard, Queue: g.QueueDepth, Free: g.FreeSlots, Rate: g.Rate}
		loads := make([]shard.Load, 0, len(b.peers))
		for _, ps := range b.peers {
			if !ps.gone && ps.loadOK {
				loads = append(loads, ps.load)
			}
		}
		if from, n, ok := b.opts.ExchangePolicy.PlanPull(self, loads); ok {
			if ps := b.peers[from]; ps != nil && !ps.gone {
				b.mExchRequests.Inc()
				b.enqueue(ps.out, &wire.MigrateRequest{Shard: b.opts.ShardID, Max: n},
					ps.nc, &ps.dropWarned, ps.label)
			}
		}
	}
	b.exMu.Unlock()
}

func (b *Broker) onGossip(ps *peerState, m *wire.ShardGossip) {
	b.exMu.Lock()
	defer b.exMu.Unlock()
	b.bindPeerExLocked(ps, m.Shard)
	if m.Seq <= ps.lastSeq {
		return // stale or duplicate
	}
	ps.lastSeq = m.Seq
	ps.load = shard.Load{Shard: m.Shard, Queue: m.QueueDepth, Free: m.FreeSlots, Rate: m.Rate}
	ps.loadOK = true
}

// ---------- migration ----------

// onMigrateRequest answers a peer's pull with queued tasklets, newest
// first (the back of a queue has waited least; the front is about to
// place anyway). Only queued work with no attempts in flight and no armed
// deadline moves; each is cancelled locally before it travels. The scan
// nests partition locks under exMu (the one allowed exMu → part.mu
// nesting); holding exMu throughout pins ps alive across the enqueues.
func (b *Broker) onMigrateRequest(ps *peerState, m *wire.MigrateRequest) {
	var out []lifecycle.Effect
	picked := 0

	b.exMu.Lock()
	b.bindPeerExLocked(ps, m.Shard)
	if b.closed.Load() || ps.gone || m.Shard == 0 {
		b.exMu.Unlock()
		return
	}
	lim := m.Max
	if c := b.opts.ExchangePolicy.MaxPull; lim > c {
		lim = c
	}
	for pi := len(b.parts) - 1; pi >= 0 && picked < lim; pi-- {
		part := b.parts[pi]
		part.mu.Lock()
		var taken map[core.TaskletID]bool
		for i := len(part.pending) - 1; i >= 0 && picked < lim; i-- {
			tid := part.pending[i]
			if taken[tid] {
				continue // voting fan-out queues one entry per replica
			}
			t := part.life.Tasklet(tid)
			if t == nil {
				continue
			}
			if part.wheel.hasDeadline(tid) {
				continue // the local deadline timer stays authoritative
			}
			if _, isAdopted := b.adopted[tid]; isAdopted {
				// Adopted work never re-migrates: its only job accounting lives
				// at the origin shard, so a failed onward hop could not be
				// re-submitted here (no local job record to hang it on).
				continue
			}
			if len(part.life.AppendActiveProviders(tid, nil)) > 0 {
				continue // partially in flight (voting); never migrate those
			}
			if taken == nil {
				taken = map[core.TaskletID]bool{}
			}
			taken[tid] = true
			// Copy before Cancel: the engine recycles tasklet state.
			tc := *t
			if _, fx := part.life.Cancel(tid); fx != nil {
				out, _ = b.applyPartFxLocked(part, fx, out)
			}
			b.migrated[tid] = migratedRec{t: tc, peer: m.Shard, link: ps}
			b.enqueue(ps.out, &wire.MigrateTasklet{
				Origin:      tid,
				Program:     tc.Program,
				ProgramData: b.program(tc.Program),
				Params:      tc.Params,
				QoC:         tc.QoC,
				Fuel:        tc.Fuel,
				Seed:        tc.Seed,
			}, ps.nc, &ps.dropWarned, ps.label)
			picked++
		}
		if taken != nil {
			keep := part.pending[:0]
			for _, tid := range part.pending {
				if !taken[tid] {
					keep = append(keep, tid)
				}
			}
			b.pendingN.Add(int64(len(keep) - len(part.pending)))
			part.pending = keep
		}
		part.mu.Unlock()
	}
	b.exMu.Unlock()

	if picked == 0 {
		return
	}
	// Cancelling a queued tasklet can promote a coalescing waiter whose
	// effects (a rare cache-hit Deliver) need jobMu — applied here, outside
	// exMu.
	b.applyOutFx(out)
	b.mExchMigrated.Add(int64(picked))
	b.logf("broker: shard %d sent %d queued tasklets to shard %d", b.opts.ShardID, picked, m.Shard)
	b.schedule()
}

// onMigrateTasklet adopts a tasklet from a peer: fresh local ID, fresh
// Submit through this shard's lifecycle partitions (memo and coalescing
// apply in this shard's key space).
func (b *Broker) onMigrateTasklet(ps *peerState, m *wire.MigrateTasklet) {
	reject := func() {
		b.enqueue(ps.out, &wire.MigrateAck{Shard: b.opts.ShardID, Origin: m.Origin, Accepted: false},
			ps.nc, &ps.dropWarned, ps.label)
	}
	if b.closed.Load() {
		reject()
		return
	}
	b.progMu.Lock()
	if _, ok := b.programs[m.Program]; !ok {
		if core.HashProgram(m.ProgramData) != m.Program {
			b.progMu.Unlock()
			reject()
			return
		}
		data := make([]byte, len(m.ProgramData))
		copy(data, m.ProgramData)
		b.programs[m.Program] = data
	}
	b.progMu.Unlock()

	tid := core.TaskletID(b.nextTasklet.Add(1))
	t := core.Tasklet{
		ID: tid, Program: m.Program, Params: m.Params,
		QoC: m.QoC, Fuel: m.Fuel, Seed: m.Seed, Submitted: time.Now(),
	}
	b.exMu.Lock()
	if ps.gone || ps.id == 0 {
		b.exMu.Unlock()
		reject()
		return
	}
	b.adopted[t.ID] = adoptedRec{origin: m.Origin, peer: ps.id}
	b.mExchAdopted.Inc()
	// Ack before Submit so the Ack always precedes the MigrateResult a memo
	// hit would deliver synchronously.
	b.enqueue(ps.out, &wire.MigrateAck{Shard: b.opts.ShardID, Origin: m.Origin, Accepted: true},
		ps.nc, &ps.dropWarned, ps.label)
	b.exMu.Unlock()

	ev := lifecycle.Event{Kind: lifecycle.EventSubmit, Tasklet: t}
	if b.memoOn {
		ev.Key, ev.HaveKey = memo.KeyFor(uint64(t.Program), t.Seed, t.Params)
	}
	b.feedPartition(b.part(t.ID), []lifecycle.Event{ev})
	b.schedule()
}

// onMigrateAck handles rejections: the origin re-submits locally.
func (b *Broker) onMigrateAck(ps *peerState, m *wire.MigrateAck) {
	b.exMu.Lock()
	b.bindPeerExLocked(ps, m.Shard)
	if m.Accepted {
		b.exMu.Unlock()
		return
	}
	rec, ok := b.migrated[m.Origin]
	if ok {
		delete(b.migrated, m.Origin)
	}
	b.exMu.Unlock()
	if ok {
		b.resubmitMigrated([]migratedRec{rec})
	}
}

// onMigrateResult feeds a migrated tasklet's final back into the origin
// shard's normal delivery path under its original job slot.
func (b *Broker) onMigrateResult(m *wire.MigrateResult) {
	b.exMu.Lock()
	rec, ok := b.migrated[m.Origin]
	if ok {
		delete(b.migrated, m.Origin)
	}
	b.exMu.Unlock()
	if !ok {
		return // job cancelled while the tasklet was away
	}
	ef := lifecycle.Effect{
		Kind:      lifecycle.EffectDeliver,
		Tasklet:   rec.t.ID,
		Attempts:  m.Attempts,
		Submitted: rec.t.Submitted,
		Final: core.Result{
			Tasklet: rec.t.ID, Job: rec.t.Job, Index: rec.t.Index,
			Provider: m.Provider, Status: m.Status, Return: m.Return,
			Emitted: m.Emitted, FaultCode: m.FaultCode, FaultMsg: m.FaultMsg,
			Exec: time.Duration(m.ExecNanos),
		},
	}
	b.deliver(&ef)
}

// returnAdoptedExLocked ships an adopted tasklet's final home. Called from
// deliver, which already consumed the adoption record; callers hold exMu.
func (b *Broker) returnAdoptedExLocked(rec adoptedRec, ef *lifecycle.Effect) {
	ps := b.peers[rec.peer]
	if ps == nil || ps.gone {
		return // origin gone; it re-homed the tasklet when the link died
	}
	final := ef.Final
	b.enqueue(ps.out, &wire.MigrateResult{
		Origin:    rec.origin,
		Status:    final.Status,
		Return:    final.Return,
		Emitted:   final.Emitted,
		FaultCode: final.FaultCode,
		FaultMsg:  final.FaultMsg,
		Provider:  final.Provider,
		Attempts:  ef.Attempts,
		ExecNanos: int64(final.Exec),
	}, ps.nc, &ps.dropWarned, ps.label)
}

// ---------- shard group ----------

// ShardGroup runs N brokers in one process, full-mesh peered, with a
// consistent-hash ring mapping program hashes to shard addresses. It is
// the in-process deployment used by tests, benchmarks, and experiment E11;
// multi-process groups wire the same pieces via the tasklet-broker CLI
// flags (-shard-id, -peer).
type ShardGroup struct {
	ring    *shard.Ring
	brokers []*Broker
	addrs   []string
}

// NewShardGroup creates n brokers from a shared option template; ShardID
// is assigned 1..n. A nil Metrics keeps per-shard registries separate, and
// a nil Policy gives each shard its own default policy instance (policies
// carry mutable state, so sharing one across shards would race).
func NewShardGroup(n int, opts Options) *ShardGroup {
	return NewShardGroupWith(n, func(int) Options { return opts })
}

// NewShardGroupWith creates n brokers, calling mk(i) for shard i's options
// (its ShardID is overwritten to i+1).
func NewShardGroupWith(n int, mk func(i int) Options) *ShardGroup {
	g := &ShardGroup{ring: shard.NewRing(0)}
	for i := 0; i < n; i++ {
		o := mk(i)
		o.ShardID = uint64(i + 1)
		g.brokers = append(g.brokers, New(o))
		g.ring.Add(o.ShardID)
	}
	return g
}

// Listen binds every shard and peers them full-mesh. Port 0 gives every
// shard an ephemeral port; an explicit port gives shard i port+i. It
// returns the per-shard addresses, index-aligned with shard IDs 1..n.
func (g *ShardGroup) Listen(addr string) ([]string, error) {
	host, portStr, splitErr := net.SplitHostPort(addr)
	port := 0
	if splitErr == nil {
		port, _ = strconv.Atoi(portStr)
	}
	for i, b := range g.brokers {
		la := addr
		if port != 0 && i > 0 {
			la = net.JoinHostPort(host, strconv.Itoa(port+i))
		}
		a, err := b.Listen(la)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.addrs = append(g.addrs, a)
	}
	for i := range g.brokers {
		for j := i + 1; j < len(g.brokers); j++ {
			if err := g.brokers[i].ConnectPeer(g.addrs[j]); err != nil {
				g.Close()
				return nil, err
			}
		}
	}
	return g.addrs, nil
}

// AddrFor returns the owning shard's address for a program's bytecode.
func (g *ShardGroup) AddrFor(program []byte) string {
	return g.AddrForHash(uint64(core.HashProgram(program)))
}

// AddrForHash returns the owning shard's address for a program hash.
func (g *ShardGroup) AddrForHash(h uint64) string {
	owner, ok := g.ring.Owner(h)
	if !ok {
		return ""
	}
	return g.addrs[owner-1]
}

// Addrs returns the per-shard addresses (index i is shard ID i+1).
func (g *ShardGroup) Addrs() []string { return g.addrs }

// Broker returns shard i's broker (0-based).
func (g *ShardGroup) Broker(i int) *Broker { return g.brokers[i] }

// Size returns the number of shards.
func (g *ShardGroup) Size() int { return len(g.brokers) }

// Close shuts every shard down.
func (g *ShardGroup) Close() error {
	var first error
	for _, b := range g.brokers {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
