package broker

import (
	"bytes"
	"log"
	"net"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/tvm"
	"repro/internal/wire"
)

// resultEssence is the semantically meaningful part of a result: everything
// except placement and timing (Provider, Attempts, Exec vary run to run).
type resultEssence struct {
	Index   int
	Status  core.ResultStatus
	Return  string
	Emitted string
	Fault   string
}

func essences(res []consumer.TaskResult) []resultEssence {
	out := make([]resultEssence, len(res))
	for i, r := range res {
		var em strings.Builder
		for _, v := range r.Emitted {
			em.WriteString(v.String())
			em.WriteByte('\n')
		}
		out[i] = resultEssence{
			Index:   r.Index,
			Status:  r.Status,
			Return:  r.Return.String(),
			Emitted: em.String(),
			Fault:   r.Fault,
		}
	}
	return out
}

// runJobWithCoalescing runs one deterministic job through a fresh stack
// with coalescing enabled or disabled on the broker and every provider, and
// returns the collected results.
func runJobWithCoalescing(t *testing.T, noCoalesce bool) []consumer.TaskResult {
	t.Helper()
	addr := testStack(t, Options{NoCoalesce: noCoalesce}, 3, func(i int) provider.Options {
		return provider.Options{Slots: 2, Speed: 100, NoCoalesce: noCoalesce}
	})
	c, err := consumer.Connect(addr, "diff")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 96
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	job, err := c.Submit(compileJob(t, squareSrc, rows...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDifferentialCoalescingBitIdentical proves coalescing changes syscall
// boundaries only: the same job produces bit-identical results (status,
// return values, emits, faults) with coalescing on and off.
func TestDifferentialCoalescingBitIdentical(t *testing.T) {
	on := essences(runJobWithCoalescing(t, false))
	off := essences(runJobWithCoalescing(t, true))
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("results diverge with coalescing on vs off:\non:  %+v\noff: %+v", on, off)
	}
	// Both runs must also be correct, not merely identical.
	for i, r := range on {
		if r.Status != core.StatusOK || r.Return != tvm.Int(int64(i)*int64(i)).String() {
			t.Fatalf("result[%d] = %+v, want OK %d", i, r, i*i)
		}
	}
}

// TestSendDroppedMetricAndCloseOnFullQueue exercises the enqueue overflow
// path white-box: a peer whose queue is full gets its messages counted in
// broker.send_dropped, one log line, and its connection closed.
func TestSendDroppedMetricAndCloseOnFullQueue(t *testing.T) {
	var logBuf bytes.Buffer
	b := New(Options{Logger: log.New(&logBuf, "", 0)})
	defer b.Close()

	a, peer := net.Pipe()
	defer peer.Close()

	full := make(chan wire.Message) // unbuffered: every enqueue overflows
	var warned atomic.Bool
	b.enqueue(full, &wire.Heartbeat{}, a, &warned, "provider 42")
	b.enqueue(full, &wire.Bye{}, a, &warned, "provider 42")

	if got := b.reg.Counter("broker.send_dropped").Value(); got != 2 {
		t.Fatalf("broker.send_dropped = %d, want 2", got)
	}
	if n := strings.Count(logBuf.String(), "send queue full"); n != 1 {
		t.Fatalf("overflow logged %d times, want once per connection:\n%s", n, logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "provider 42") {
		t.Fatalf("log line does not name the peer: %s", logBuf.String())
	}
	// The connection must have been closed so the peer's reader tears down.
	if _, err := a.Write([]byte{0}); err == nil {
		t.Fatal("connection still open after queue overflow")
	}
}
