package broker

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/provider"
)

// runJobWithPartitions runs one deterministic job through a fresh stack with
// the given partition count (1 = the single-stripe legacy-equivalent core).
func runJobWithPartitions(t *testing.T, partitions int) []consumer.TaskResult {
	t.Helper()
	b := New(Options{Partitions: partitions})
	if got := len(b.parts); got != partitions {
		t.Fatalf("Partitions=%d built %d partitions", partitions, got)
	}
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	for i := 0; i < 3; i++ {
		p, err := provider.Connect(provider.Options{
			BrokerAddr: addr, Slots: 2, Speed: 100, Name: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
	}
	c, err := consumer.Connect(addr, "part-diff")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 96
	job, err := c.Submit(compileJob(t, squareSrc, intRows(n)...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDifferentialPartitionsBitIdentical is the ablation contract for the
// partitioned core: -partitions=1 must be event-identical to the legacy
// serialized broker, and a multi-partition run of the same job must produce
// bit-identical results (status, return values, emits, faults) — the stripes
// change where lifecycle state lives, never what the consumer sees.
func TestDifferentialPartitionsBitIdentical(t *testing.T) {
	one := essences(runJobWithPartitions(t, 1))
	four := essences(runJobWithPartitions(t, 4))
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("results diverge between 1 and 4 partitions:\nP=1: %+v\nP=4: %+v", one, four)
	}
	for i, r := range one {
		if r.Status != core.StatusOK {
			t.Fatalf("result[%d] = %+v, want OK %d", i, r, i*i)
		}
	}
}

// TestPartitionStressInterleaved hammers a 4-partition broker with
// interleaved submits, results, QoC deadlines, job cancels, and a provider
// loss, then asserts the two partition-safety invariants: no tasklet is
// finalized twice (every surviving job yields exactly one result per index)
// and no attempt leaks (all lifecycle state drains to zero once the dust
// settles). Run it under -race and the ingress rings, timer wheels, combiner
// handoff and striped counters are all exercised across stripes.
func TestPartitionStressInterleaved(t *testing.T) {
	b := New(Options{Partitions: 4, RetryBackoff: time.Millisecond})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	for i := 0; i < 2; i++ {
		p, err := provider.Connect(provider.Options{
			BrokerAddr: addr, Slots: 4, Speed: 100, Name: fmt.Sprintf("steady%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
	}
	// Slow providers keep attempts in flight long enough for deadlines and
	// cancels to catch them. "crawler" stays up all run (so late deadline
	// jobs still have attempts that blow their budget); "doomed" dies mid-run
	// to exercise ProviderLost re-issues (with backoff, so the timer wheel's
	// launch path runs too).
	crawler, err := provider.Connect(provider.Options{
		BrokerAddr: addr, Slots: 2, Speed: 100, Throttle: 0.2, Name: "crawler"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { crawler.Close() })
	doomed, err := provider.Connect(provider.Options{
		BrokerAddr: addr, Slots: 2, Speed: 100, Throttle: 0.05, Name: "doomed"})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const jobsPerWorker = 6
	const n = 24
	// Compiled once on the test goroutine; workers copy them (compileJob uses
	// t.Fatal, which must not run off the test goroutine). Deadline jobs use
	// a ~20x heavier loop so their 3ms budget is unmeetable even on a fast
	// idle provider — every run drives expirations through the wheel.
	baseSpec := compileJob(t, slowSrc, intRows(n)...)
	heavySrc := `func main(n int) int {
		var s int = 0;
		for (var i int = 0; i < 400000; i = i + 1) { s = s + i; }
		return n * n;
	}`
	heavySpec := compileJob(t, heavySrc, intRows(n)...)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := consumer.Connect(addr, fmt.Sprintf("stress%d", w))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < jobsPerWorker; j++ {
				spec := baseSpec
				switch j % 3 {
				case 1:
					// Tight deadline: tasklets expire on the wheel (the work
					// outlasts the budget); every index must still settle
					// exactly once.
					spec = heavySpec
					spec.QoC = core.QoC{Deadline: 3 * time.Millisecond}
				case 2:
					// Cancelled mid-flight after a short head start.
					job, err := c.Submit(spec)
					if err != nil {
						errs <- err
						return
					}
					time.Sleep(2 * time.Millisecond)
					if err := c.Cancel(job); err != nil {
						errs <- err
						return
					}
					continue
				}
				job, err := c.Submit(spec)
				if err != nil {
					errs <- err
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				res, err := job.Collect(ctx)
				cancel()
				if err != nil {
					errs <- err
					return
				}
				if len(res) != n {
					errs <- fmt.Errorf("worker %d job %d: %d results, want %d", w, j, len(res), n)
					return
				}
				seen := map[int]bool{}
				for _, r := range res {
					if seen[r.Index] {
						errs <- fmt.Errorf("worker %d job %d: index %d finalized twice", w, j, r.Index)
						return
					}
					seen[r.Index] = true
				}
			}
		}(w)
	}

	time.Sleep(25 * time.Millisecond)
	doomed.Close() // mid-run provider loss across every partition

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Attempt-leak check: with every consumer gone (cancelled jobs die with
	// their consumer) the engines and queues must drain to zero. The window
	// is generous because abandoned attempts settle only when their provider
	// reports in, and the throttled provider stretches race-slowed
	// executions considerably.
	deadline := time.Now().Add(30 * time.Second)
	for {
		s := b.Snapshot()
		if s.Pending == 0 && s.InFlight == 0 && s.Jobs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked state after stress: pending=%d inflight=%d jobs=%d",
				s.Pending, s.InFlight, s.Jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	m := b.Metrics()
	if m.Counter("tasklets.deadline_expired").Value() == 0 {
		t.Error("stress never expired a deadline (wheel path not exercised)")
	}
	if m.Counter("attempts.lost").Value() == 0 {
		t.Error("provider loss produced no lost attempts")
	}
}
