package broker

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/wire"
)

// benchConn is a no-op net.Conn for directly injected provider states.
type benchConn struct{}

func (benchConn) Read([]byte) (int, error)         { return 0, nil }
func (benchConn) Write(b []byte) (int, error)      { return len(b), nil }
func (benchConn) Close() error                     { return nil }
func (benchConn) LocalAddr() net.Addr              { return nil }
func (benchConn) RemoteAddr() net.Addr             { return nil }
func (benchConn) SetDeadline(time.Time) error      { return nil }
func (benchConn) SetReadDeadline(time.Time) error  { return nil }
func (benchConn) SetWriteDeadline(time.Time) error { return nil }

// benchBroker builds a broker with p injected, registered providers. Each
// provider gets a drainer goroutine so Assign messages never back up the
// send queue; the drainers die when the channels are closed via cleanup.
func benchBroker(b *testing.B, p int, noIndex bool) *Broker {
	b.Helper()
	br := New(Options{
		Policy:      scheduler.NewWorkSteal(),
		NoIndex:     noIndex,
		Partitions:  1,
		MemoEntries: -1, MemoBytes: -1, MemoTTL: -1,
	})
	for i := 0; i < p; i++ {
		br.nextProvider++
		id := br.nextProvider
		ps := &providerState{
			info: core.ProviderInfo{
				ID:          id,
				Slots:       4,
				Speed:       float64(1 + (i*37)%100),
				Reliability: 1,
			},
			out:   make(chan wire.Message, sendQueueDepth),
			nc:    benchConn{},
			label: fmt.Sprintf("provider %d", id),
			sent:  map[core.ProgramID]bool{},
		}
		ps.free.Store(4)
		br.providers[id] = ps
		br.index.Upsert(&ps.info, int(ps.free.Load()), int(ps.backlog.Load()))
		out := ps.out
		go func() {
			for range out {
			}
		}()
		b.Cleanup(func() { close(out) })
	}
	return br
}

// enqueueBatch queues k fresh pending tasklets on the broker: each is
// submitted to the lifecycle engine and its launch effect applied to the
// placement queue by hand (no memo keys, so Submit emits exactly one Launch).
func enqueueBatch(br *Broker, k int) {
	part := br.parts[0]
	for i := 0; i < k; i++ {
		tid := core.TaskletID(br.nextTasklet.Add(1))
		part.life.Submit(core.Tasklet{ID: tid, Job: 1, Index: i, Fuel: 1_000_000}, "", false)
		part.pending = append(part.pending, tid)
		br.pendingN.Add(1)
	}
}

// drainBatch reverts the placements of one benchmark iteration so the next
// iteration sees an idle fleet: every attempt completes (finalizing its
// best-effort tasklet in the engine), and the fleet accounting is restored.
func drainBatch(br *Broker, b *testing.B) {
	part := br.parts[0]
	attempts := make([]core.Result, 0, 256)
	part.life.VisitAttempts(func(id core.AttemptID, tid core.TaskletID, pid core.ProviderID, _ bool) {
		attempts = append(attempts, core.Result{
			Attempt: id, Tasklet: tid, Provider: pid, Status: core.StatusOK,
		})
	})
	for _, res := range attempts {
		p := br.providers[res.Provider]
		p.free.Add(1)
		p.backlog.Add(-1)
		p.finished.Add(1)
		br.updateReliabilityLocked(p)
		br.index.Complete(p.info.ID)
		part.life.Result(res)
	}
	if len(part.pending) != 0 {
		b.Fatalf("%d tasklets unplaced", len(part.pending))
	}
	if n := part.life.Pending(); n != 0 {
		b.Fatalf("%d tasklets still live in the engine", n)
	}
}

// BenchmarkBrokerPlacement measures a full placement pass over a batch of
// 256 pending tasklets against a fleet of P providers, exercising the real
// schedulePassLocked (queue walk, exclusion building, launch bookkeeping,
// Assign dispatch) with the index on and off. ns/op is per batch, not per
// pick.
func BenchmarkBrokerPlacement(b *testing.B) {
	const batch = 256
	for _, p := range []int{100, 1000, 10000} {
		for _, mode := range []struct {
			name    string
			noIndex bool
		}{{"indexed", false}, {"legacy", true}} {
			b.Run(fmt.Sprintf("P=%d/%s", p, mode.name), func(b *testing.B) {
				br := benchBroker(b, p, mode.noIndex)
				br.mu.Lock()
				defer br.mu.Unlock()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					enqueueBatch(br, batch)
					b.StartTimer()
					br.schedulePassLocked()
					b.StopTimer()
					drainBatch(br, b)
					b.StartTimer()
				}
			})
		}
	}
}
