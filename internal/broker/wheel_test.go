package broker

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestWheelAdvance drives advance directly (no timer goroutine) and pins the
// wheel's core semantics: due entries fire once, disarmed deadlines never
// fire, re-arming replaces the earlier deadline, and far-future entries
// survive intermediate sweeps.
func TestWheelAdvance(t *testing.T) {
	w := newTimerWheel(nil)
	now := time.Now()

	w.armDeadline(1, 5*time.Millisecond)
	w.armDeadline(2, 5*time.Millisecond)
	w.armDeadline(3, 400*time.Millisecond) // beyond a full rotation
	w.armLaunch(4, 5*time.Millisecond)
	w.stopDeadline(2)
	w.armDeadline(5, 5*time.Millisecond)
	w.armDeadline(5, 30*time.Millisecond) // re-arm pushes it out

	due := w.advance(now.Add(20*time.Millisecond), nil)
	got := map[core.TaskletID]uint8{}
	for _, e := range due {
		if _, dup := got[e.tid]; dup {
			t.Fatalf("tasklet %d fired twice in one sweep", e.tid)
		}
		got[e.tid] = e.kind
	}
	if got[1] != wheelDeadline || got[4] != wheelLaunch {
		t.Fatalf("first sweep fired %v, want tasklet 1 (deadline) and 4 (launch)", got)
	}
	if _, ok := got[2]; ok {
		t.Fatal("disarmed deadline fired")
	}
	if _, ok := got[5]; ok {
		t.Fatal("re-armed deadline fired at its old expiry")
	}
	if w.hasDeadline(1) {
		t.Fatal("fired deadline still reported armed")
	}
	if !w.hasDeadline(3) || !w.hasDeadline(5) {
		t.Fatal("pending deadlines lost by the sweep")
	}

	due = w.advance(now.Add(50*time.Millisecond), due[:0])
	if len(due) != 1 || due[0].tid != 5 {
		t.Fatalf("second sweep fired %d entries, want just the re-armed tasklet 5", len(due))
	}

	// A wheel more than a full rotation behind still finds everything due in
	// one capped sweep.
	due = w.advance(now.Add(2*time.Second), due[:0])
	if len(due) != 1 || due[0].tid != 3 {
		t.Fatalf("catch-up sweep fired %v, want tasklet 3", due)
	}
	if w.count != 0 {
		t.Fatalf("wheel count %d after draining, want 0", w.count)
	}
}

// TestWheelRunFires exercises the timer goroutine end to end: an armed
// deadline reaches the fire callback, and the goroutine sleeps (not spins)
// while the wheel is empty yet wakes for entries armed afterwards.
func TestWheelRunFires(t *testing.T) {
	fired := make(chan core.TaskletID, 8)
	w := newTimerWheel(func(kind uint8, tid core.TaskletID) { fired <- tid })
	stop := make(chan struct{})
	defer close(stop)
	go w.run(stop)

	w.armDeadline(7, 2*time.Millisecond)
	select {
	case tid := <-fired:
		if tid != 7 {
			t.Fatalf("fired %d, want 7", tid)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("armed deadline never fired")
	}

	// Arm after the wheel went idle: the kick must wake the goroutine.
	time.Sleep(5 * time.Millisecond)
	w.armLaunch(9, time.Millisecond)
	select {
	case tid := <-fired:
		if tid != 9 {
			t.Fatalf("fired %d, want 9", tid)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("entry armed on an idle wheel never fired")
	}
}

// TestIngressRingFIFO pins single-producer semantics: events pop in push
// order, pop on empty reports false, and the ring is reusable after
// wrapping past its capacity.
func TestIngressRingFIFO(t *testing.T) {
	r := newIngressRing()
	var ev partEvent
	if r.pop(&ev) || r.hasData() {
		t.Fatal("fresh ring claims to hold data")
	}
	const total = ingressRingSize*2 + 17 // force a wrap
	popped := 0
	for i := 0; i < total; i++ {
		r.push(&partEvent{kind: peDeadline, tid: core.TaskletID(i)})
		// Drain every few pushes so the bounded ring never fills.
		for ; r.pop(&ev); popped++ {
			if ev.tid != core.TaskletID(popped) {
				t.Fatalf("popped tid %d, want %d (FIFO violated)", ev.tid, popped)
			}
		}
	}
	if popped != total {
		t.Fatalf("popped %d of %d events", popped, total)
	}
}

// TestIngressRingConcurrentProducers is the MPSC contract under the race
// detector: several producers push through a full ring (exercising the
// backpressure spin) while one consumer drains; nothing is lost, duplicated,
// or reordered within a producer's own stream.
func TestIngressRingConcurrentProducers(t *testing.T) {
	r := newIngressRing()
	const producers = 4
	const perProducer = 8 * ingressRingSize

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				// tid encodes (producer, seq) so the consumer can check
				// per-producer FIFO order.
				r.push(&partEvent{kind: peResult, tid: core.TaskletID(p*perProducer + i)})
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	next := [producers]int{}
	seen := 0
	var ev partEvent
	for seen < producers*perProducer {
		if !r.pop(&ev) {
			select {
			case <-done:
				if !r.hasData() && seen < producers*perProducer {
					t.Errorf("producers done but only %d of %d events arrived", seen, producers*perProducer)
					return
				}
			default:
			}
			continue
		}
		p, i := int(ev.tid)/perProducer, int(ev.tid)%perProducer
		if i != next[p] {
			t.Fatalf("producer %d: popped seq %d, want %d", p, i, next[p])
		}
		next[p]++
		seen++
	}
	if r.hasData() {
		t.Fatal("ring still holds data after every event was consumed")
	}
}
