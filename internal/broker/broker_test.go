package broker

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/consumer"
	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/scheduler"
	"repro/internal/tasklang"
	"repro/internal/tvm"
	"repro/internal/wire"
)

// testStack spins up a broker plus n providers on loopback and returns the
// broker address. Everything is torn down with t.Cleanup.
func testStack(t *testing.T, opts Options, n int, provOpts func(i int) provider.Options) string {
	t.Helper()
	b := New(opts)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	for i := 0; i < n; i++ {
		po := provider.Options{BrokerAddr: addr, Slots: 2, Speed: 100, Name: fmt.Sprintf("p%d", i)}
		if provOpts != nil {
			po = provOpts(i)
			po.BrokerAddr = addr
		}
		p, err := provider.Connect(po)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
	}
	return addr
}

// compileJob builds a JobSpec from TCL source and int parameter rows.
func compileJob(t *testing.T, src string, rows ...[]int64) core.JobSpec {
	t.Helper()
	prog, err := tasklang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	params := make([][]tvm.Value, len(rows))
	for i, row := range rows {
		vals := make([]tvm.Value, len(row))
		for j, v := range row {
			vals[j] = tvm.Int(v)
		}
		params[i] = vals
	}
	return core.JobSpec{Program: data, Params: params, Seed: 1}
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

const squareSrc = `func main(n int) int { return n * n; }`

func TestEndToEndSingleTasklet(t *testing.T) {
	addr := testStack(t, Options{}, 1, nil)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, err := c.Submit(compileJob(t, squareSrc, []int64{12}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].OK() || res[0].Return.I != 144 {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res[0].Attempts)
	}
}

func TestEndToEndManyTaskletsOrdered(t *testing.T) {
	addr := testStack(t, Options{}, 3, nil)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	job, err := c.Submit(compileJob(t, squareSrc, rows...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.OK() || r.Return.I != int64(i*i) {
			t.Fatalf("result[%d] = %+v, want %d", i, r, i*i)
		}
	}
	completed, failed := job.Counts()
	if completed != n || failed != 0 {
		t.Fatalf("counts = %d/%d", completed, failed)
	}
}

func TestEndToEndProgramShippedOnce(t *testing.T) {
	reg := Options{}
	addr := testStack(t, reg, 1, nil)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows := make([][]int64, 20)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	job, err := c.Submit(compileJob(t, squareSrc, rows...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Collect(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	// A second job with the same program reuses the provider cache: no way
	// to observe directly from here, but completing fast with one provider
	// shows the flow works; the dedup behaviour itself is unit-tested via
	// the wire Assign.ProgramData contract in provider tests.
}

func TestEndToEndFaultReported(t *testing.T) {
	addr := testStack(t, Options{}, 1, nil)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, err := c.Submit(compileJob(t, `func main(n int) int { return 1 / n; }`, []int64{0}, []int64{2}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].OK() || res[0].Status != core.StatusFault {
		t.Fatalf("div-by-zero result = %+v", res[0])
	}
	if !res[1].OK() || res[1].Return.I != 0 {
		t.Fatalf("1/2 = %+v", res[1])
	}
	_, failed := job.Counts()
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
}

func TestEndToEndEmittedValues(t *testing.T) {
	addr := testStack(t, Options{}, 1, nil)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	src := `func main(n int) void { for (var i int = 0; i < n; i = i + 1) { emit(i * 10); } }`
	job, err := c.Submit(compileJob(t, src, []int64{3}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Emitted) != 3 || res[0].Emitted[2].I != 20 {
		t.Fatalf("emitted = %v", res[0].Emitted)
	}
}

func TestRedundantQoCUsesDistinctProviders(t *testing.T) {
	addr := testStack(t, Options{}, 3, nil)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := compileJob(t, squareSrc, []int64{9})
	spec.QoC = core.QoC{Mode: core.QoCVoting, Replicas: 3}
	job, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK() || res[0].Return.I != 81 {
		t.Fatalf("voting result = %+v", res[0])
	}
	if res[0].Attempts < 2 {
		t.Fatalf("voting used %d attempts, want >= majority", res[0].Attempts)
	}
}

func TestProviderChurnReissuesWork(t *testing.T) {
	// One flaky provider dies after 5 tasklets; a stable one finishes the
	// job. Heartbeat timeout is short so loss detection is fast.
	opts := Options{HeartbeatTimeout: 300 * time.Millisecond}
	addr := testStack(t, opts, 2, func(i int) provider.Options {
		po := provider.Options{Slots: 1, Speed: 100, Name: fmt.Sprintf("p%d", i),
			HeartbeatInterval: 50 * time.Millisecond}
		if i == 0 {
			po.FailAfter = 5
		}
		return po
	})
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 40
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	job, err := c.Submit(compileJob(t, squareSrc, rows...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.OK() {
			t.Fatalf("tasklet %d failed despite surviving provider: %+v", i, r)
		}
		if r.Return.I != int64(i*i) {
			t.Fatalf("tasklet %d = %d, want %d", i, r.Return.I, i*i)
		}
	}
}

func TestAllProvidersGoneThenJoinLate(t *testing.T) {
	// Submitting with zero providers queues; a provider joining later
	// drains the queue.
	b := New(Options{})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, err := c.Submit(compileJob(t, squareSrc, []int64{5}))
	if err != nil {
		t.Fatal(err)
	}
	// Give the broker a moment to verify nothing completes without
	// providers.
	select {
	case r := <-job.Results():
		t.Fatalf("result with no providers: %+v", r)
	case <-time.After(100 * time.Millisecond):
	}

	p, err := provider.Connect(provider.Options{BrokerAddr: addr, Slots: 1, Speed: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK() || res[0].Return.I != 25 {
		t.Fatalf("late-join result = %+v", res[0])
	}
}

func TestDeadlineExpiresUnplaceableTasklet(t *testing.T) {
	// No providers at all: the deadline must fire and fail the tasklet.
	b := New(Options{})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := compileJob(t, squareSrc, []int64{1})
	spec.QoC = core.QoC{Deadline: 150 * time.Millisecond}
	job, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].OK() || res[0].Fault == "" {
		t.Fatalf("deadline result = %+v", res[0])
	}
}

func TestCancelJobStopsDelivery(t *testing.T) {
	addr := testStack(t, Options{}, 1, func(int) provider.Options {
		return provider.Options{Slots: 1, Speed: 100}
	})
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A slow job: each tasklet burns real fuel.
	src := `func main(n int) int {
		var acc int = 0;
		for (var i int = 0; i < 3000000; i = i + 1) { acc = acc + i % 7; }
		return acc;
	}`
	rows := make([][]int64, 50)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	job, err := c.Submit(compileJob(t, src, rows...))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(job); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Collect(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	// Counts tracks results actually delivered before the job ended; a
	// working cancel leaves most of the 50 tasklets undelivered.
	completed, _ := job.Counts()
	if completed == 50 {
		t.Fatal("cancel had no effect; all tasklets completed")
	}
}

func TestBadJobRejected(t *testing.T) {
	addr := testStack(t, Options{}, 1, nil)
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Submit(core.JobSpec{Program: []byte("garbage"), Params: [][]tvm.Value{{}}})
	if err == nil {
		t.Fatal("garbage program accepted by client-side validation")
	}
}

func TestBrokerRejectsWrongVersion(t *testing.T) {
	b := New(Options{})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := wire.NewConn(nc)
	if err := conn.Send(&wire.Hello{Version: 99, Role: wire.RoleConsumer}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	em, ok := msg.(*wire.ErrorMsg)
	if !ok || em.Code != wire.ErrCodeVersion {
		t.Fatalf("reply = %#v, want version error", msg)
	}
}

func TestBrokerRejectsNonHelloFirstMessage(t *testing.T) {
	b := New(Options{})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := wire.NewConn(nc)
	if err := conn.Send(&wire.Heartbeat{}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if em, ok := msg.(*wire.ErrorMsg); !ok || em.Code != wire.ErrCodeProtocol {
		t.Fatalf("reply = %#v, want protocol error", msg)
	}
}

func TestSnapshotReflectsProviders(t *testing.T) {
	b := New(Options{})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	p, err := provider.Connect(provider.Options{BrokerAddr: addr, Slots: 3, Speed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := b.Snapshot()
		if len(s.Providers) == 1 && s.Providers[0].Slots == 3 {
			if s.Providers[0].Speed != 42 {
				t.Fatalf("speed = %v, want 42", s.Providers[0].Speed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("provider never registered: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMetricsAccounting(t *testing.T) {
	b := New(Options{})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	p, err := provider.Connect(provider.Options{BrokerAddr: addr, Slots: 2, Speed: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job, err := c.Submit(compileJob(t, squareSrc, []int64{1}, []int64{2}, []int64{3}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Collect(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	m := b.Metrics()
	if got := m.Counter("tasklets.submitted").Value(); got != 3 {
		t.Fatalf("submitted = %d", got)
	}
	if got := m.Counter("tasklets.completed").Value(); got != 3 {
		t.Fatalf("completed = %d", got)
	}
	if got := m.Counter("attempts.ok").Value(); got < 3 {
		t.Fatalf("attempts.ok = %d", got)
	}
}

func TestFastestPolicySendsWorkToFastProvider(t *testing.T) {
	opts := Options{Policy: scheduler.NewFastestFree()}
	b := New(opts)
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	fast, err := provider.Connect(provider.Options{BrokerAddr: addr, Slots: 1, Speed: 1000, Name: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	slow, err := provider.Connect(provider.Options{BrokerAddr: addr, Slots: 1, Speed: 1, Name: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Sequential single-tasklet jobs: with a free fast provider the policy
	// must always choose it.
	for i := 0; i < 5; i++ {
		job, err := c.Submit(compileJob(t, squareSrc, []int64{int64(i)}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Collect(ctxT(t)); err != nil {
			t.Fatal(err)
		}
	}
	if fast.Executed() != 5 || slow.Executed() != 0 {
		t.Fatalf("fast=%d slow=%d, want 5/0", fast.Executed(), slow.Executed())
	}
}

func TestConsumerDisconnectCleansUp(t *testing.T) {
	b := New(Options{})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	// Submit with no providers so tasklets stay queued, then vanish.
	if _, err := c.Submit(compileJob(t, squareSrc, []int64{1}, []int64{2})); err != nil {
		t.Fatal(err)
	}
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := b.Snapshot()
		if s.Jobs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs not cleaned after consumer left: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAdmissionControlRejectsOversizedQueue(t *testing.T) {
	b := New(Options{MaxPendingPerConsumer: 10})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c, err := consumer.Connect(addr, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 11 tasklets with no providers: exceeds the per-consumer budget.
	rows := make([][]int64, 11)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	if _, err := c.Submit(compileJob(t, squareSrc, rows...)); err == nil {
		t.Fatal("oversized job accepted")
	}
	// A smaller job still fits and the session remains usable.
	job, err := c.Submit(compileJob(t, squareSrc, rows[:5]...))
	if err != nil {
		t.Fatalf("within-budget job rejected: %v", err)
	}
	p, err := provider.Connect(provider.Options{BrokerAddr: addr, Slots: 2, Speed: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res[4].OK() || res[4].Return.I != 16 {
		t.Fatalf("res = %+v", res[4])
	}
}

func TestDisableProgramCacheStillExecutes(t *testing.T) {
	b := New(Options{DisableProgramCache: true})
	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	p, err := provider.Connect(provider.Options{BrokerAddr: addr, Slots: 1, Speed: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := consumer.Connect(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job, err := c.Submit(compileJob(t, squareSrc, []int64{2}, []int64{3}, []int64{4}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Collect(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{4, 9, 16} {
		if !res[i].OK() || res[i].Return.I != want {
			t.Fatalf("res[%d] = %+v", i, res[i])
		}
	}
}

func TestMultipleConsumersInterleave(t *testing.T) {
	// Two consumers submit concurrently; each gets exactly its own
	// results back.
	addr := testStack(t, Options{}, 2, nil)

	type outcome struct {
		id  int
		res []consumer.TaskResult
		err error
	}
	results := make(chan outcome, 2)
	for id := 0; id < 2; id++ {
		go func(id int) {
			c, err := consumer.Connect(addr, fmt.Sprintf("consumer-%d", id))
			if err != nil {
				results <- outcome{id: id, err: err}
				return
			}
			defer c.Close()
			rows := make([][]int64, 30)
			for i := range rows {
				rows[i] = []int64{int64(id*1000 + i)}
			}
			job, err := c.Submit(compileJob(t, squareSrc, rows...))
			if err != nil {
				results <- outcome{id: id, err: err}
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			res, err := job.Collect(ctx)
			results <- outcome{id: id, res: res, err: err}
		}(id)
	}
	for n := 0; n < 2; n++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("consumer %d: %v", o.id, o.err)
		}
		for i, r := range o.res {
			want := int64(o.id*1000+i) * int64(o.id*1000+i)
			if !r.OK() || r.Return.I != want {
				t.Fatalf("consumer %d result %d = %+v, want %d (cross-consumer leak?)",
					o.id, i, r, want)
			}
		}
	}
}
