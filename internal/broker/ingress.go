package broker

import (
	"runtime"
	"sync/atomic"

	"repro/internal/core"
)

// This file implements the per-partition MPSC ingress ring: the contention
// boundary between the provider reader goroutines (many producers decoding
// results off their sockets) and the partition combiner (one consumer at a
// time, elected by CAS — see partition.go). Producers reserve a slot with
// one CAS on the enqueue cursor; the consumer runs lock-free on a cursor
// only it touches. The design is the classic bounded seq-ring (Vyukov),
// restricted to a single consumer.

// partEvent kinds routed through the ring.
const (
	peResult uint8 = iota + 1
	// peDeadline fires when a tasklet's QoC deadline elapses on the
	// partition timer wheel.
	peDeadline
	// peLaunchReady fires when a backoff-delayed re-issue becomes eligible
	// for placement.
	peLaunchReady
)

// partEvent is one unit of partition input: a decoded attempt result
// (carrying its provider so the combiner can settle slot accounting), or a
// timer-wheel firing.
type partEvent struct {
	kind uint8
	prov *providerState // peResult only
	res  core.Result    // peResult only
	tid  core.TaskletID // peDeadline, peLaunchReady
}

const ingressRingSize = 1024 // power of two

type ringSlot struct {
	seq atomic.Uint64
	ev  partEvent
}

// ingressRing is a bounded multi-producer single-consumer queue. push blocks
// (spinning with Gosched) when the ring is full — backpressure onto the
// producing reader goroutine, never loss. The single consumer is enforced by
// the partition's draining flag, not by the ring itself.
type ingressRing struct {
	slots []ringSlot
	mask  uint64
	enq   atomic.Uint64
	_     [56]byte      // keep the consumer cursor off the producers' line
	deq   atomic.Uint64 // written only by the elected consumer
}

func newIngressRing() *ingressRing {
	r := &ingressRing{slots: make([]ringSlot, ingressRingSize), mask: ingressRingSize - 1}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push publishes one event, waiting out a full ring. Safe for any number of
// concurrent producers. The combiner never calls push while draining, so the
// wait cannot deadlock: the elected consumer always makes progress.
func (r *ingressRing) push(ev *partEvent) {
	pos := r.enq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.ev = *ev
				slot.seq.Store(pos + 1)
				return
			}
			pos = r.enq.Load()
		case seq < pos: // full: consumer hasn't freed this slot yet
			runtime.Gosched()
			pos = r.enq.Load()
		default: // raced past; reload
			pos = r.enq.Load()
		}
	}
}

// pop moves the next event into *ev, returning false when the ring is
// empty. Single consumer only.
func (r *ingressRing) pop(ev *partEvent) bool {
	deq := r.deq.Load()
	slot := &r.slots[deq&r.mask]
	if slot.seq.Load() != deq+1 {
		return false
	}
	*ev = slot.ev
	slot.ev = partEvent{} // drop the provider/result references for GC
	slot.seq.Store(deq + uint64(len(r.slots)))
	r.deq.Store(deq + 1)
	return true
}

// hasData reports whether at least one published event is waiting. Used for
// the combiner handoff re-check; safe to call from any goroutine.
func (r *ingressRing) hasData() bool {
	deq := r.deq.Load()
	return r.slots[deq&r.mask].seq.Load() == deq+1
}
