// Package speedbench measures a provider's TVM execution speed. Every
// provider runs the same calibration tasklet at startup and advertises the
// measured score (TVM mega-ops per second) in its registration; speed-aware
// scheduling policies rank providers by it.
//
// Because the score is measured in the same VM that will execute real
// tasklets, it automatically reflects whatever makes the host slow: CPU
// generation, load, emulation, or a provider-configured throttle.
package speedbench

import (
	"fmt"
	"time"

	"repro/internal/tasklang"
	"repro/internal/tvm"
)

// calibrationSrc is a mixed integer/float/array kernel chosen to exercise
// the interpreter's hot paths (arithmetic, branches, locals, array access)
// in proportions similar to the standard workloads.
const calibrationSrc = `
func main(rounds int) int {
	var acc int = 0;
	var xs arr = [1, 2, 3, 4, 5, 6, 7, 8];
	for (var r int = 0; r < rounds; r = r + 1) {
		var f float = 1.0;
		for (var i int = 0; i < len(xs); i = i + 1) {
			acc = acc + xs[i] * (r % 7);
			f = f * 1.0001;
			if (acc % 13 == 0) { acc = acc + 1; }
		}
		xs[r % len(xs)] = acc % 97;
	}
	return acc;
}
`

// compiled is the calibration program, compiled once at package init. A
// compile failure here is a programming error caught by every test run.
var compiled = func() *tvm.Program {
	p, err := tasklang.Compile(calibrationSrc)
	if err != nil {
		panic(fmt.Sprintf("speedbench: calibration program does not compile: %v", err))
	}
	return p
}()

// Program returns the calibration program (shared, immutable).
func Program() *tvm.Program { return compiled }

// Options tunes a measurement.
type Options struct {
	// MinDuration is the minimum measured wall time; rounds double until a
	// run takes at least this long. Default 50ms.
	MinDuration time.Duration
	// MaxRounds caps the doubling. Default 1 << 20.
	MaxRounds int
}

// Score is a measurement result.
type Score struct {
	MegaOpsPerSec float64
	FuelUsed      uint64
	Elapsed       time.Duration
	Rounds        int
}

// Measure runs the calibration kernel until it consumes at least
// opts.MinDuration of wall time and returns the measured speed.
func Measure(opts Options) (Score, error) {
	if opts.MinDuration <= 0 {
		opts.MinDuration = 50 * time.Millisecond
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1 << 20
	}
	cfg := tvm.DefaultConfig()
	cfg.Fuel = 1 << 62 // calibration is bounded by rounds, not fuel

	rounds := 1024
	for {
		start := time.Now()
		res, err := tvm.New(compiled, cfg).Run(tvm.Int(int64(rounds)))
		if err != nil {
			return Score{}, fmt.Errorf("speedbench: calibration run failed: %w", err)
		}
		elapsed := time.Since(start)
		if elapsed >= opts.MinDuration || rounds >= opts.MaxRounds {
			secs := elapsed.Seconds()
			if secs <= 0 {
				secs = 1e-9
			}
			return Score{
				MegaOpsPerSec: float64(res.FuelUsed) / secs / 1e6,
				FuelUsed:      res.FuelUsed,
				Elapsed:       elapsed,
				Rounds:        rounds,
			}, nil
		}
		rounds *= 2
	}
}
