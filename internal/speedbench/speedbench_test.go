package speedbench

import (
	"testing"
	"time"

	"repro/internal/tvm"
)

func TestProgramCompilesAndRuns(t *testing.T) {
	p := Program()
	res, err := tvm.New(p, tvm.DefaultConfig()).Run(tvm.Int(100))
	if err != nil {
		t.Fatalf("calibration kernel: %v", err)
	}
	if res.FuelUsed == 0 {
		t.Fatal("kernel consumed no fuel")
	}
}

func TestMeasureProducesPositiveScore(t *testing.T) {
	s, err := Measure(Options{MinDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if s.MegaOpsPerSec <= 0 {
		t.Fatalf("score = %+v", s)
	}
	if s.Elapsed < 10*time.Millisecond && s.Rounds < 1<<20 {
		t.Fatalf("measurement too short without hitting round cap: %+v", s)
	}
}

func TestMeasureDeterministicKernel(t *testing.T) {
	// The kernel's result (not its speed) must be deterministic: two runs
	// with the same rounds return the same value, which guards against
	// accidental nondeterminism in the calibration workload.
	cfg := tvm.DefaultConfig()
	cfg.Fuel = 1 << 40
	r1, err := tvm.New(Program(), cfg).Run(tvm.Int(5000))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tvm.New(Program(), cfg).Run(tvm.Int(5000))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Return.Equal(r2.Return) || r1.FuelUsed != r2.FuelUsed {
		t.Fatal("calibration kernel is nondeterministic")
	}
}

func TestMeasureRoundCap(t *testing.T) {
	s, err := Measure(Options{MinDuration: time.Hour, MaxRounds: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rounds > 2048 {
		t.Fatalf("rounds = %d exceeded cap", s.Rounds)
	}
}
